"""File discovery, AST context and suppression for :mod:`repro.lint`.

The analyzer parses each file once, builds a :class:`ModuleContext`
(import-alias resolution plus project-level knowledge such as the set of
registered experiment modules) and hands it to every rule.  Violations on
lines carrying ``# repro: noqa`` or ``# repro: noqa=CODE[,CODE...]`` are
filtered before reporting.
"""

from __future__ import annotations

import ast
import concurrent.futures
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.lint.rules import LintRule, build_rules

__all__ = [
    "DEFAULT_EXCLUDED_DIRS",
    "ModuleContext",
    "Violation",
    "check_file",
    "check_paths",
    "check_project",
    "check_source",
    "iter_python_files",
    "registered_experiment_modules",
]

#: Directory names never descended into.  ``lint_fixtures`` holds the
#: deliberately-dirty snippets the linter's own tests assert against.
DEFAULT_EXCLUDED_DIRS = frozenset(
    {
        ".git",
        ".hypothesis",
        ".pytest_cache",
        "__pycache__",
        "build",
        "dist",
        "lint_fixtures",
    }
)

_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:\s*=\s*(?P<codes>[A-Z0-9,\s]+))?",
)


@dataclass(frozen=True, order=True)
class Violation:
    """One reported lint finding.

    Attributes
    ----------
    path:
        File the finding is in (as given to the analyzer).
    line, col:
        1-based position of the offending node.
    rule:
        Rule code (``REPROnnn``).
    message:
        Human-readable explanation with the suggested fix.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: CODE message`` - the human output line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (the machine output record)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """Everything a rule may ask about one parsed module."""

    path: str
    source: str
    tree: ast.Module
    lines: List[str]
    registered_experiments: Optional[FrozenSet[str]] = None
    _aliases: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._aliases = _import_aliases(self.tree)

    @property
    def module_stem(self) -> str:
        """File name without extension."""
        return Path(self.path).stem

    @property
    def parent_dir_name(self) -> str:
        """Name of the directory containing the file."""
        return Path(self.path).parent.name

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, or ``None``.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` whatever the import spelling
        (``import numpy as np``, ``from numpy import random``,
        ``from numpy.random import default_rng``, ...).
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        head = self._aliases.get(parts[0], parts[0])
        return ".".join([head, *parts[1:]])

    def suppressed(self, violation: Violation) -> bool:
        """Whether a ``# repro: noqa`` comment silences this violation."""
        if not 1 <= violation.line <= len(self.lines):
            return False
        match = _NOQA_PATTERN.search(self.lines[violation.line - 1])
        if match is None:
            return False
        codes = match.group("codes")
        if codes is None:
            return True
        wanted = {code.strip() for code in codes.split(",") if code.strip()}
        return violation.rule in wanted


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to canonical dotted prefixes."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                target = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports cannot be numpy
            for name in node.names:
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def registered_experiment_modules(source: str) -> FrozenSet[str]:
    """Extract registered experiment module names from registry source.

    Looks for ``Experiment(...)`` constructions and records the module of
    each ``runner`` argument (``table2.run`` -> ``table2``), accepting the
    runner either as the fourth positional argument or as a keyword.
    """
    tree = ast.parse(source)
    modules = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        func_name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if func_name != "Experiment":
            continue
        runner: Optional[ast.expr] = None
        if len(node.args) >= 4:
            runner = node.args[3]
        for keyword in node.keywords:
            if keyword.arg == "runner":
                runner = keyword.value
        if isinstance(runner, ast.Attribute) and isinstance(
            runner.value, ast.Name
        ):
            modules.add(runner.value.id)
    return frozenset(modules)


def check_source(
    source: str,
    path: str = "<string>",
    *,
    rules: Optional[Sequence[LintRule]] = None,
    registered_experiments: Optional[FrozenSet[str]] = None,
    respect_noqa: bool = True,
) -> List[Violation]:
    """Lint one source string; the core API the CLI and tests share."""
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Violation(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 0) + 1,
                rule="REPRO900",
                message=f"syntax error prevents linting: {error.msg}",
            )
        ]
    context = ModuleContext(
        path=path,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        registered_experiments=registered_experiments,
    )
    active_rules = list(rules) if rules is not None else build_rules()
    violations: List[Violation] = []
    for rule in active_rules:
        violations.extend(rule.check_module(context))
    if respect_noqa:
        violations = [v for v in violations if not context.suppressed(v)]
    return sorted(violations)


def check_file(
    path: Path,
    *,
    rules: Optional[Sequence[LintRule]] = None,
    registered_experiments: Optional[FrozenSet[str]] = None,
    respect_noqa: bool = True,
) -> List[Violation]:
    """Lint one file from disk."""
    source = Path(path).read_text(encoding="utf-8")
    return check_source(
        source,
        str(path),
        rules=rules,
        registered_experiments=registered_experiments,
        respect_noqa=respect_noqa,
    )


def iter_python_files(
    roots: Iterable[Path],
    *,
    excluded_dirs: FrozenSet[str] = DEFAULT_EXCLUDED_DIRS,
) -> Iterator[Path]:
    """Yield every ``.py`` file under ``roots``, skipping excluded dirs."""
    for root in roots:
        root = Path(root)
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        for candidate in sorted(root.rglob("*.py")):
            relative = candidate.relative_to(root)
            if any(part in excluded_dirs for part in relative.parts[:-1]):
                continue
            yield candidate


def _find_registry(files: Sequence[Path]) -> Optional[FrozenSet[str]]:
    for candidate in files:
        if (
            candidate.name == "registry.py"
            and candidate.parent.name == "experiments"
        ):
            return registered_experiment_modules(
                candidate.read_text(encoding="utf-8")
            )
    return None


def _lint_file_worker(
    args: Tuple[str, Optional[Tuple[str, ...]], Optional[Tuple[str, ...]],
                Optional[FrozenSet[str]], bool],
) -> List[Violation]:
    """Process-pool worker: lint one file (all arguments picklable)."""
    path, select, ignore, registered, respect_noqa = args
    return check_file(
        Path(path),
        rules=build_rules(select=select, ignore=ignore),
        registered_experiments=registered,
        respect_noqa=respect_noqa,
    )


def check_paths(
    roots: Sequence[Path],
    *,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    excluded_dirs: FrozenSet[str] = DEFAULT_EXCLUDED_DIRS,
    respect_noqa: bool = True,
    jobs: Optional[int] = None,
) -> Tuple[List[Violation], int]:
    """Lint every Python file under ``roots``.

    ``jobs`` > 1 fans the per-file work out over a process pool; output
    is sorted either way, so the violation list is byte-identical for
    any job count.

    Returns
    -------
    tuple
        ``(violations, files_checked)``.  The experiment registry (for
        ``REPRO005``) is discovered automatically among the linted files.
    """
    rules = build_rules(select=select, ignore=ignore)
    files = list(iter_python_files(roots, excluded_dirs=excluded_dirs))
    registered = _find_registry(files)
    violations: List[Violation] = []
    worker_count = int(jobs) if jobs else 1
    if worker_count > 1 and len(files) > 1:
        select_t = tuple(select) if select is not None else None
        ignore_t = tuple(ignore) if ignore is not None else None
        work = [
            (str(path), select_t, ignore_t, registered, respect_noqa)
            for path in files
        ]
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(worker_count, len(files))
        ) as pool:
            for result in pool.map(_lint_file_worker, work):
                violations.extend(result)
    else:
        for path in files:
            violations.extend(
                check_file(
                    path,
                    rules=rules,
                    registered_experiments=registered,
                    respect_noqa=respect_noqa,
                )
            )
    return sorted(violations), len(files)


def _deep_suppressed(
    violation: Violation, line_cache: Dict[str, List[str]]
) -> bool:
    """noqa check for whole-program findings (sources read lazily)."""
    if violation.path not in line_cache:
        try:
            line_cache[violation.path] = Path(violation.path).read_text(
                encoding="utf-8"
            ).splitlines()
        except OSError:
            line_cache[violation.path] = []
    lines = line_cache[violation.path]
    if not 1 <= violation.line <= len(lines):
        return False
    match = _NOQA_PATTERN.search(lines[violation.line - 1])
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True
    wanted = {code.strip() for code in codes.split(",") if code.strip()}
    return violation.rule in wanted


def check_project(
    roots: Sequence[Path],
    *,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    excluded_dirs: FrozenSet[str] = DEFAULT_EXCLUDED_DIRS,
    respect_noqa: bool = True,
    cache_dir: Optional[Path] = None,
    extra_boundaries: FrozenSet[str] = frozenset(),
) -> Tuple[List[Violation], object]:
    """Run the whole-program (REPRO1xx) rules over ``roots``.

    Builds (or loads from ``cache_dir``) the project call graph, runs
    every selected :class:`~repro.lint.project_rules.ProjectRule`, and
    filters findings through the same ``# repro: noqa`` machinery as the
    per-file pass - a whole-program finding anchors to the offending
    call site, so a noqa comment on that line suppresses it.

    Returns ``(violations, graph)``; the graph is returned so callers
    (tests, tooling) can inspect roots and reachability directly.
    """
    # Imported lazily: project_rules imports Violation from this module.
    from repro.lint.graph import load_or_build
    from repro.lint.project_rules import ProjectContext, build_project_rules

    graph = load_or_build(
        roots, cache_dir=cache_dir, excluded_dirs=excluded_dirs
    )
    context = ProjectContext(
        graph=graph,
        roots=tuple(str(root) for root in roots),
        extra_boundaries=extra_boundaries,
    )
    select_f = frozenset(select) if select is not None else None
    ignore_f = frozenset(ignore) if ignore is not None else None
    violations: List[Violation] = []
    for rule in build_project_rules(select=select_f, ignore=ignore_f):
        violations.extend(rule.check_project(context))
    if respect_noqa:
        line_cache: Dict[str, List[str]] = {}
        violations = [
            violation
            for violation in violations
            if not _deep_suppressed(violation, line_cache)
        ]
    return sorted(violations), graph
