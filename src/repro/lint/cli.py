"""Command line for the project linter (``python -m repro.lint``)."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.lint.analyzer import (
    DEFAULT_EXCLUDED_DIRS,
    Violation,
    check_paths,
    check_project,
)
from repro.lint.baseline import (
    BASELINE_FILENAME,
    compare_to_baseline,
    load_baseline,
    save_baseline,
)
from repro.lint.project_rules import (
    PROJECT_RULE_REGISTRY,
    all_project_rule_codes,
)
from repro.lint.rules import RULE_REGISTRY, all_rule_codes
from repro.lint.sarif import render_sarif

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Determinism/invariant static analysis for the repro "
            "codebase: per-file rules (REPRO001-006) plus, with "
            "--deep, whole-program purity/provenance certification "
            "(REPRO101-104)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--exclude",
        metavar="DIRS",
        help=(
            "comma-separated directory names to skip in addition to "
            f"the defaults ({', '.join(sorted(DEFAULT_EXCLUDED_DIRS))})"
        ),
    )
    parser.add_argument(
        "--no-noqa",
        action="store_true",
        help="report violations even on '# repro: noqa' lines",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint files with N worker processes (default: 1)",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help=(
            "also run the whole-program rules (REPRO101-104): call-graph "
            "purity certification, RNG provenance taint, exception "
            "contract, backend parity"
        ),
    )
    parser.add_argument(
        "--graph-cache",
        metavar="DIR",
        help=(
            "cache the pickled call graph in DIR, keyed on a hash of "
            "all source bytes (only meaningful with --deep)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "compare against a baseline file: violations fingerprinted "
            "there are reported as legacy and do not fail the run "
            f"(default name: {BASELINE_FILENAME})"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline file from this run's violations "
            "(prunes stale fingerprints) and exit 0"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def _rule_summaries() -> Dict[str, str]:
    summaries: Dict[str, str] = {
        code: RULE_REGISTRY[code].summary for code in all_rule_codes()
    }
    summaries.update(
        {
            code: PROJECT_RULE_REGISTRY[code].summary
            for code in all_project_rule_codes()
        }
    )
    summaries["REPRO900"] = "syntax error prevents linting"
    return summaries


def _subset(
    codes: Optional[List[str]], universe: Sequence[str]
) -> Optional[List[str]]:
    if codes is None:
        return None
    allowed = set(universe)
    return [code for code in codes if code in allowed]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code.

    ``0`` - clean (or only baseline-tracked legacy violations);
    ``1`` - new violations found; ``2`` - usage error (unknown rule
    code, missing path, unreadable baseline).
    """
    parser = build_parser()
    options = parser.parse_args(argv)

    file_codes = all_rule_codes()
    project_codes = all_project_rule_codes()

    if options.list_rules:
        for code in file_codes:
            print(f"{code}  {RULE_REGISTRY[code].summary}")
        for code in project_codes:
            print(
                f"{code}  {PROJECT_RULE_REGISTRY[code].summary} "
                "(whole-program, needs --deep)"
            )
        return 0

    select = _split_codes(options.select)
    ignore = _split_codes(options.ignore)
    known = set(file_codes) | set(project_codes)
    unknown = sorted(set(select or []) | set(ignore or []))
    unknown = [code for code in unknown if code not in known]
    if unknown:
        print(
            f"error: unknown rule code(s): {', '.join(unknown)}",
            file=sys.stderr,
        )
        return 2
    if options.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2

    roots = [Path(p) for p in options.paths]
    missing = [str(p) for p in roots if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    excluded = set(DEFAULT_EXCLUDED_DIRS)
    extra = _split_codes(options.exclude)
    if extra:
        excluded.update(extra)

    try:
        violations, files_checked = check_paths(
            roots,
            select=_subset(select, file_codes),
            ignore=_subset(ignore, file_codes),
            excluded_dirs=frozenset(excluded),
            respect_noqa=not options.no_noqa,
            jobs=options.jobs,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if options.deep:
        cache_dir = (
            Path(options.graph_cache) if options.graph_cache else None
        )
        deep_violations, _graph = check_project(
            roots,
            select=_subset(select, project_codes),
            ignore=_subset(ignore, project_codes),
            excluded_dirs=frozenset(excluded),
            respect_noqa=not options.no_noqa,
            cache_dir=cache_dir,
        )
        violations = sorted([*violations, *deep_violations])

    baseline_path = (
        Path(options.baseline) if options.baseline else None
    )
    if options.update_baseline:
        target = baseline_path or Path(BASELINE_FILENAME)
        count = save_baseline(target, violations)
        print(f"baseline written: {count} fingerprint(s) -> {target}")
        return 0

    new: List[Violation] = list(violations)
    legacy: List[Violation] = []
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        comparison = compare_to_baseline(violations, baseline)
        new, legacy = list(comparison.new), list(comparison.legacy)

    if options.format == "sarif":
        # SARIF carries every finding (legacy included) so code-scanning
        # alert state tracks reality; the exit code ratchets on new only.
        sys.stdout.write(
            render_sarif(
                violations,
                rule_summaries=_rule_summaries(),
                base_dir=Path.cwd(),
            )
        )
    elif options.format == "json":
        counts: Dict[str, int] = {}
        for violation in new:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        payload: Dict[str, object] = {
            "files_checked": files_checked,
            "violations": [v.to_dict() for v in new],
            "counts": counts,
        }
        if baseline_path is not None:
            payload["baselined"] = [v.to_dict() for v in legacy]
        print(json.dumps(payload, indent=2))
    else:
        for violation in new:
            print(violation.render())
        noun = "file" if files_checked == 1 else "files"
        suffix = (
            f" ({len(legacy)} baselined violation(s) not shown)"
            if legacy
            else ""
        )
        if new:
            print(
                f"{len(new)} violation(s) in {files_checked} "
                f"{noun} checked{suffix}"
            )
        else:
            print(f"clean: {files_checked} {noun} checked{suffix}")
    return 1 if new else 0
