"""Command line for the project linter (``python -m repro.lint``)."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.lint.analyzer import DEFAULT_EXCLUDED_DIRS, check_paths
from repro.lint.rules import RULE_REGISTRY, all_rule_codes

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Determinism/invariant static analysis for the repro "
            "codebase (rules REPRO001-REPRO005)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--exclude",
        metavar="DIRS",
        help=(
            "comma-separated directory names to skip in addition to "
            f"the defaults ({', '.join(sorted(DEFAULT_EXCLUDED_DIRS))})"
        ),
    )
    parser.add_argument(
        "--no-noqa",
        action="store_true",
        help="report violations even on '# repro: noqa' lines",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code.

    ``0`` - clean; ``1`` - violations found; ``2`` - usage error
    (unknown rule code, missing path).
    """
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for code in all_rule_codes():
            print(f"{code}  {RULE_REGISTRY[code].summary}")
        return 0

    roots = [Path(p) for p in options.paths]
    missing = [str(p) for p in roots if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    excluded = set(DEFAULT_EXCLUDED_DIRS)
    extra = _split_codes(options.exclude)
    if extra:
        excluded.update(extra)

    try:
        violations, files_checked = check_paths(
            roots,
            select=_split_codes(options.select),
            ignore=_split_codes(options.ignore),
            excluded_dirs=frozenset(excluded),
            respect_noqa=not options.no_noqa,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if options.format == "json":
        counts: Dict[str, int] = {}
        for violation in violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        print(
            json.dumps(
                {
                    "files_checked": files_checked,
                    "violations": [v.to_dict() for v in violations],
                    "counts": counts,
                },
                indent=2,
            )
        )
    else:
        for violation in violations:
            print(violation.render())
        noun = "file" if files_checked == 1 else "files"
        if violations:
            print(
                f"{len(violations)} violation(s) in {files_checked} "
                f"{noun} checked"
            )
        else:
            print(f"clean: {files_checked} {noun} checked")
    return 1 if violations else 0
