"""Project-specific static analysis (``python -m repro.lint``).

A small AST-walking linter enforcing the determinism and invariant
conventions of this repository.  Rules are plugins registered in
:mod:`repro.lint.rules`; discovery, ``# repro: noqa=`` suppression and
reporting live in :mod:`repro.lint.analyzer`; the command line in
:mod:`repro.lint.cli`.

With ``--deep`` the linter additionally runs *whole-program* analyses:
:mod:`repro.lint.graph` builds a project-wide call graph with effect
summaries, :mod:`repro.lint.flow` runs fixpoint purity/taint dataflow
over it, and :mod:`repro.lint.project_rules` certifies the REPRO1xx
invariants (purity of cache-entering call trees, RNG seed provenance,
the exception contract and cross-backend kernel parity).  SARIF output
and the baseline ratchet live in :mod:`repro.lint.sarif` and
:mod:`repro.lint.baseline`.

See ``docs/static_analysis.md`` for the rule catalogue.
"""

from __future__ import annotations

from repro.lint.analyzer import (
    Violation,
    check_file,
    check_paths,
    check_project,
    check_source,
    iter_python_files,
)
from repro.lint.rules import (
    RULE_REGISTRY,
    LintRule,
    all_rule_codes,
    build_rules,
    register_rule,
)

__all__ = [
    "LintRule",
    "RULE_REGISTRY",
    "Violation",
    "all_rule_codes",
    "build_rules",
    "check_file",
    "check_paths",
    "check_project",
    "check_source",
    "iter_python_files",
    "register_rule",
]
