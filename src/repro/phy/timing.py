"""Channel occupancy times ``Ts`` / ``Tc`` per access mode (Section III/V.F).

``Ts`` is the average time the channel is sensed busy by a successful
transmission and ``Tc`` the time wasted by a collision.  The paper's
formulas (propagation delay neglected, equal packet sizes) are:

Basic access::

    Ts = H + P + SIFS + ACK + DIFS
    Tc = H + P + SIFS

RTS/CTS access (collisions can only involve RTS frames)::

    Ts' = RTS + SIFS + CTS + SIFS + H + P + SIFS + ACK + DIFS
    Tc' = RTS + DIFS

The paper prints ``Ts'`` with one SIFS elided (a typographical slip in the
proceedings); we use the standard 802.11 exchange with three SIFS gaps.
``Ts`` only shifts every payoff curve by a common factor near the optimum
(it cancels from the stationarity condition, see
:func:`repro.game.equilibrium.q_function`), so this choice does not move
the equilibria.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.phy.parameters import AccessMode, PhyParameters

__all__ = ["SlotTimes", "slot_times"]


@dataclass(frozen=True)
class SlotTimes:
    """Busy/idle durations of the three slot outcomes, in microseconds.

    Attributes
    ----------
    success_us:
        ``Ts`` - channel busy time for a successful transmission.
    collision_us:
        ``Tc`` - channel busy time for a collision.
    idle_us:
        ``sigma`` - duration of an empty slot.
    mode:
        The access mode these times correspond to.
    """

    success_us: float
    collision_us: float
    idle_us: float
    mode: AccessMode

    def __post_init__(self) -> None:
        for name in ("success_us", "collision_us", "idle_us"):
            value = getattr(self, name)
            if not value > 0:
                raise ParameterError(f"{name} must be positive, got {value!r}")


def slot_times(params: PhyParameters, mode: AccessMode) -> SlotTimes:
    """Derive :class:`SlotTimes` from PHY parameters for an access mode.

    Parameters
    ----------
    params:
        The PHY/MAC constants (Table I).
    mode:
        :attr:`AccessMode.BASIC` or :attr:`AccessMode.RTS_CTS`.

    Returns
    -------
    SlotTimes
        The ``(Ts, Tc, sigma)`` triple used throughout the model.
    """
    header = params.header_time_us
    payload = params.payload_time_us
    sifs = params.sifs_us
    difs = params.difs_us
    if mode is AccessMode.BASIC:
        success = header + payload + sifs + params.ack_time_us + difs
        collision = header + payload + sifs
    elif mode is AccessMode.RTS_CTS:
        success = (
            params.rts_time_us
            + sifs
            + params.cts_time_us
            + sifs
            + header
            + payload
            + sifs
            + params.ack_time_us
            + difs
        )
        collision = params.rts_time_us + difs
    else:  # pragma: no cover - enum is closed
        raise ParameterError(f"unknown access mode: {mode!r}")
    return SlotTimes(
        success_us=success,
        collision_us=collision,
        idle_us=params.slot_time_us,
        mode=mode,
    )
