"""Network parameters of the reproduced paper (Table I).

All durations are expressed in microseconds and all frame sizes in bits.
The paper's evaluation uses a 1 Mbit/s channel, for which one bit takes
exactly one microsecond on the air; the conversion is still performed
explicitly through :attr:`PhyParameters.channel_bit_rate` so that other
rates work too.

The class is intentionally a frozen dataclass: experiments share parameter
objects freely and must not mutate them behind each other's back.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict

from repro.errors import ParameterError

__all__ = [
    "AccessMode",
    "PhyParameters",
    "default_parameters",
    "parameters_80211b",
]


class AccessMode(enum.Enum):
    """Channel access mechanism of IEEE 802.11 DCF.

    ``BASIC`` sends data frames directly; collisions last for the whole
    data frame.  ``RTS_CTS`` precedes data with an RTS/CTS handshake, so
    collisions only waste an RTS frame (Section V.F of the paper).
    """

    BASIC = "basic"
    RTS_CTS = "rts_cts"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class PhyParameters:
    """Immutable bundle of PHY/MAC constants (paper Table I).

    Parameters
    ----------
    payload_bits:
        Packet payload size in bits.  The network is saturated and all
        packets share this size.
    mac_header_bits, phy_header_bits:
        MAC and PHY header sizes in bits.  The paper's ``H`` is their sum.
    ack_bits, rts_bits, cts_bits:
        Control frame bodies in bits, *excluding* the PHY header, which is
        added on transmission (Table I writes e.g. "ACK 112 bits + PHY
        header").
    channel_bit_rate:
        Channel rate in bits per second.
    slot_time_us, sifs_us, difs_us:
        Empty slot duration sigma, SIFS and DIFS in microseconds.
    gain, cost:
        Utility constants: ``gain`` (``g``) is the reward for one
        successfully delivered packet and ``cost`` (``e``) the energy cost
        of one transmission attempt.
    stage_duration_us:
        Duration ``T`` of one stage of the repeated game, in microseconds
        (Table I gives 10 s).
    discount_factor:
        Discount ``delta`` of the repeated game; close to 1 for
        long-sighted players.
    max_backoff_stage:
        ``m``, the number of contention-window doublings (the window at
        stage ``j`` is ``2^j * W`` and stays at ``2^m * W`` beyond).  Not
        listed in Table I; the 802.11 default ladder (32 -> 1024) gives 5.
    cw_min, cw_max:
        Bounds of the strategy space ``W = {cw_min, ..., cw_max}``.  The
        paper uses ``{1, ..., Wmax}``; we default the lower bound to 1 and
        expose it because several routines need ``W >= 2`` for the backoff
        chain to have any randomness.
    """

    payload_bits: float = 8184.0
    mac_header_bits: float = 272.0
    phy_header_bits: float = 128.0
    ack_bits: float = 112.0
    rts_bits: float = 160.0
    cts_bits: float = 112.0
    channel_bit_rate: float = 1e6
    slot_time_us: float = 50.0
    sifs_us: float = 28.0
    difs_us: float = 128.0
    gain: float = 1.0
    cost: float = 0.01
    stage_duration_us: float = 10e6
    discount_factor: float = 0.9999
    max_backoff_stage: int = 5
    cw_min: int = 1
    cw_max: int = 4096

    def __post_init__(self) -> None:
        positive_fields = (
            "payload_bits",
            "mac_header_bits",
            "phy_header_bits",
            "ack_bits",
            "rts_bits",
            "cts_bits",
            "channel_bit_rate",
            "slot_time_us",
            "sifs_us",
            "difs_us",
            "stage_duration_us",
        )
        for name in positive_fields:
            value = getattr(self, name)
            if not value > 0:
                raise ParameterError(f"{name} must be positive, got {value!r}")
        if self.gain <= 0:
            raise ParameterError(f"gain must be positive, got {self.gain!r}")
        if self.cost < 0:
            raise ParameterError(f"cost must be non-negative, got {self.cost!r}")
        if self.cost >= self.gain:
            raise ParameterError(
                "the model assumes g > e (Lemma 2 requires g >> e); "
                f"got gain={self.gain!r}, cost={self.cost!r}"
            )
        if not 0 < self.discount_factor < 1:
            raise ParameterError(
                f"discount_factor must lie in (0, 1), got {self.discount_factor!r}"
            )
        if self.max_backoff_stage < 0:
            raise ParameterError(
                f"max_backoff_stage must be >= 0, got {self.max_backoff_stage!r}"
            )
        if self.cw_min < 1:
            raise ParameterError(f"cw_min must be >= 1, got {self.cw_min!r}")
        if self.cw_max < self.cw_min:
            raise ParameterError(
                f"cw_max ({self.cw_max!r}) must be >= cw_min ({self.cw_min!r})"
            )

    # ------------------------------------------------------------------
    # Derived air times (microseconds)
    # ------------------------------------------------------------------
    def _bits_to_us(self, bits: float) -> float:
        """Convert an on-air frame size in bits to microseconds."""
        return bits / self.channel_bit_rate * 1e6

    @property
    def header_time_us(self) -> float:
        """``H``: time to transmit the PHY + MAC header."""
        return self._bits_to_us(self.mac_header_bits + self.phy_header_bits)

    @property
    def payload_time_us(self) -> float:
        """``P``: time to transmit the packet payload."""
        return self._bits_to_us(self.payload_bits)

    @property
    def ack_time_us(self) -> float:
        """Time to transmit an ACK frame (body + PHY header)."""
        return self._bits_to_us(self.ack_bits + self.phy_header_bits)

    @property
    def rts_time_us(self) -> float:
        """Time to transmit an RTS frame (body + PHY header)."""
        return self._bits_to_us(self.rts_bits + self.phy_header_bits)

    @property
    def cts_time_us(self) -> float:
        """Time to transmit a CTS frame (body + PHY header)."""
        return self._bits_to_us(self.cts_bits + self.phy_header_bits)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def with_updates(self, **changes: object) -> "PhyParameters":
        """Return a copy with the given fields replaced (validated anew)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def strategy_space(self) -> range:
        """The CW strategy space ``{cw_min, ..., cw_max}`` as a range."""
        return range(self.cw_min, self.cw_max + 1)

    def as_table(self) -> Dict[str, str]:
        """Render the parameters in the layout of the paper's Table I.

        Returns an ordered mapping from parameter label to a human-readable
        value string; used by the ``table1`` experiment.
        """
        return {
            "Packet size": f"{self.payload_bits:.0f} bits",
            "MAC header": f"{self.mac_header_bits:.0f} bits",
            "PHY header": f"{self.phy_header_bits:.0f} bits",
            "ACK": f"{self.ack_bits:.0f} bits + PHY header",
            "RTS": f"{self.rts_bits:.0f} bits + PHY header",
            "CTS": f"{self.cts_bits:.0f} bits + PHY header",
            "Channel bit rate": f"{self.channel_bit_rate / 1e6:g} Mbits/s",
            "sigma": f"{self.slot_time_us:g} us",
            "SIFS": f"{self.sifs_us:g} us",
            "DIFS": f"{self.difs_us:g} us",
            "g": f"{self.gain:g}",
            "e": f"{self.cost:g}",
            "T": f"{self.stage_duration_us / 1e6:g} s",
            "delta": f"{self.discount_factor:g}",
        }


def default_parameters() -> PhyParameters:
    """The exact parameter set of the paper's Table I."""
    return PhyParameters()


def parameters_80211b() -> PhyParameters:
    """An 802.11b-flavoured preset (11 Mbit/s, short PHY timing).

    Not used by the paper - provided to show the framework is not tied
    to Table I.  Values follow the 802.11b standard: 11 Mbit/s payload
    rate, 20 us slots, SIFS 10 us, DIFS 50 us; frame sizes as in
    Table I.  All equilibrium machinery works unchanged: the optimal
    ``tau`` only depends on ``sigma/Tc`` (Lemma 3), so the efficient
    windows shrink with the cheaper slots and faster frames.
    """
    return PhyParameters(
        channel_bit_rate=11e6,
        slot_time_us=20.0,
        sifs_us=10.0,
        difs_us=50.0,
    )
