"""PHY/MAC layer parameters and slot-overhead timing.

This subpackage is the lowest substrate of the reproduction: it captures the
network parameters of Table I of the paper and derives from them the channel
occupancy times ``Ts`` (successful transmission) and ``Tc`` (collision) used
by both the analytical model (:mod:`repro.bianchi`) and the discrete-event
simulator (:mod:`repro.sim`).
"""

from repro.phy.parameters import (
    AccessMode,
    PhyParameters,
    default_parameters,
    parameters_80211b,
)
from repro.phy.timing import SlotTimes, slot_times

__all__ = [
    "AccessMode",
    "PhyParameters",
    "SlotTimes",
    "default_parameters",
    "parameters_80211b",
    "slot_times",
]
