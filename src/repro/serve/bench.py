"""Load-generator benchmark for the solve server (``BENCH_serve.json``).

Boots an in-process :class:`~repro.serve.protocol.ServeServer` on an
ephemeral port against a dedicated store, then drives it over real TCP
with an asyncio load generator:

* **Latency/throughput sweep** - at each concurrency level a distinct
  workload of ``equilibrium`` requests is replayed twice against the
  same store: the *cold* pass computes every solve, the *warm* pass is
  served from the store cache.  Per-request wall times give p50/p99
  latency and solves/s per pass; the cold/warm p50 ratio is the
  headline cache speedup.
* **Coalesce probe** - N generators fire the *same* fresh request
  concurrently; the service's counters must show exactly one solve,
  with the other N-1 requests coalesced onto it (or served from cache
  when they arrive after the commit).
* **Batch probe** - N distinct ``fixed_point`` requests fired
  concurrently must fold into fewer batched solver calls than requests.

``run_benchmark`` returns the result document and (optionally) writes
it atomically; ``smoke=True`` shrinks the workload for CI.  All wire
traffic goes through the real HTTP protocol layer, so the measured
latency includes parsing, coalescing bookkeeping and store I/O exactly
as a client would see them.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ServeError
from repro.experiments.export import write_json
from repro.serve.protocol import ServeServer
from repro.serve.requests import encode_json
from repro.serve.service import EquilibriumService
from repro.store import ResultStore

__all__ = ["DEFAULT_OUTPUT", "render_report", "run_benchmark"]

#: Default artifact path, relative to the current working directory.
DEFAULT_OUTPUT = "BENCH_serve.json"

#: Concurrency levels of the latency sweep (full / smoke).
FULL_LEVELS = (1, 16, 256)
SMOKE_LEVELS = (1, 4, 16)

#: Identical concurrent requests of the coalesce probe (full / smoke).
FULL_COALESCE = 32
SMOKE_COALESCE = 8

#: Distinct concurrent ``fixed_point`` requests of the batch probe.
FULL_BATCH = 64
SMOKE_BATCH = 12


def _percentile(samples: Sequence[float], fraction: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        raise ServeError("cannot take a percentile of zero samples")
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def _workload(offset: int, requests: int) -> List[Dict[str, Any]]:
    """Distinct ``equilibrium`` documents, unique across the whole sweep.

    Documents enumerate ``(n_nodes, mode, preset, ignore_cost)`` combos
    starting at ``offset`` so no two documents of the benchmark share a
    digest - a later level must not be pre-warmed by an earlier one.
    ``n_nodes`` stays in the paper's 2-60 range, which bounds the cost
    of one cold solve.
    """
    modes = ("basic", "rts_cts")
    presets = ("default", "80211b")
    documents = []
    for i in range(requests):
        index = offset + i
        documents.append(
            {
                "kind": "equilibrium",
                "params": {
                    "n_nodes": 2 + (index // 8) % 59,
                    "mode": modes[index % 2],
                    "preset": presets[(index // 2) % 2],
                    "ignore_cost": bool((index // 4) % 2),
                },
            }
        )
    return documents


async def _post(
    host: str, port: int, documents: List[Dict[str, Any]]
) -> List[float]:
    """One keep-alive connection working through ``documents`` serially.

    Returns the per-request wall times (seconds).
    """
    reader, writer = await asyncio.open_connection(host, port)
    latencies = []
    try:
        for document in documents:
            body = encode_json(document)
            head = (
                "POST /v1/solve HTTP/1.1\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Content-Type: application/json\r\n"
                "\r\n"
            ).encode("latin-1")
            started = time.perf_counter()
            writer.write(head + body)
            await writer.drain()
            status_line = await reader.readuntil(b"\r\n")
            status = int(status_line.split()[1])
            length = 0
            while True:
                line = await reader.readuntil(b"\r\n")
                text = line.decode("latin-1").strip()
                if not text:
                    break
                name, _, value = text.partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value)
            payload = await reader.readexactly(length)
            latencies.append(time.perf_counter() - started)
            if status != 200:
                raise ServeError(
                    f"benchmark request failed with {status}: "
                    f"{payload[:200].decode('utf-8', 'replace')}"
                )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown
            pass
    return latencies


def _split(
    documents: List[Dict[str, Any]], lanes: int
) -> List[List[Dict[str, Any]]]:
    return [documents[i::lanes] for i in range(lanes) if documents[i::lanes]]


async def _run_pass(
    host: str, port: int, documents: List[Dict[str, Any]], concurrency: int
) -> Tuple[Dict[str, float], List[float]]:
    started = time.perf_counter()
    lanes = await asyncio.gather(
        *(_post(host, port, lane) for lane in _split(documents, concurrency))
    )
    wall = time.perf_counter() - started
    latencies = [sample for lane in lanes for sample in lane]
    summary = {
        "requests": len(latencies),
        "wall_s": wall,
        "requests_per_s": len(latencies) / wall if wall > 0 else 0.0,
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
    }
    return summary, latencies


async def _bench(
    store: ResultStore, *, smoke: bool
) -> Dict[str, Any]:
    levels = SMOKE_LEVELS if smoke else FULL_LEVELS
    service = EquilibriumService(store)
    server = ServeServer(service, host="127.0.0.1", port=0)
    await server.start()
    host, port = server.host, server.port
    try:
        level_reports = []
        offset = 0
        for concurrency in levels:
            documents = _workload(offset, max(concurrency, 8))
            offset += len(documents)
            cold, _ = await _run_pass(host, port, documents, concurrency)
            warm, _ = await _run_pass(host, port, documents, concurrency)
            speedup = (
                cold["p50_ms"] / warm["p50_ms"] if warm["p50_ms"] > 0 else None
            )
            level_reports.append(
                {
                    "concurrency": concurrency,
                    "cold": cold,
                    "warm": warm,
                    "warm_speedup_p50": speedup,
                }
            )

        # Coalesce probe: N identical fresh requests, concurrently.
        n_coalesce = SMOKE_COALESCE if smoke else FULL_COALESCE
        before = service.stats.snapshot()
        probe = {
            "kind": "best_response",
            "params": {"n_nodes": 75, "discount": 0.95},
        }
        await asyncio.gather(
            *(_post(host, port, [probe]) for _ in range(n_coalesce))
        )
        after = service.stats.snapshot()
        coalesce_report = {
            "requests": n_coalesce,
            "solves": after["solves"] - before["solves"],
            "coalesced": after["coalesced"] - before["coalesced"],
            "cache_hits": after["cache_hits"] - before["cache_hits"],
        }

        # Batch probe: N distinct fixed_point requests, concurrently.
        n_batch = SMOKE_BATCH if smoke else FULL_BATCH
        before = service.stats.snapshot()
        batch_documents = [
            {
                "kind": "fixed_point",
                "params": {"windows": [32.0 + i, 64.0, 128.0], "max_stage": 5},
            }
            for i in range(n_batch)
        ]
        await asyncio.gather(
            *(_post(host, port, [document]) for document in batch_documents)
        )
        after = service.stats.snapshot()
        batch_report = {
            "requests": n_batch,
            "batches": after["batches"] - before["batches"],
            "batched_requests": after["batched_requests"]
            - before["batched_requests"],
            "solver_calls": after["solves"] - before["solves"],
        }

        return {
            "schema": "repro.bench.serve/1",
            "smoke": smoke,
            "levels": level_reports,
            "coalesce": coalesce_report,
            "batch": batch_report,
            "stats": service.stats.snapshot(),
        }
    finally:
        await server.close()


def run_benchmark(
    *,
    store_root: Optional[Union[str, Path]] = None,
    output: Optional[Union[str, Path]] = DEFAULT_OUTPUT,
    smoke: bool = False,
) -> Dict[str, Any]:
    """Run the serve benchmark; returns (and optionally writes) the report.

    Parameters
    ----------
    store_root:
        Store directory backing the server.  Defaults to a throwaway
        directory under the system tempdir so the cold pass is honestly
        cold; pass an existing store to benchmark against it.
    output:
        Artifact path (atomically written JSON); ``None`` skips writing.
    smoke:
        Shrink concurrency levels and probe sizes for CI.
    """
    if store_root is None:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
            report = asyncio.run(_bench(ResultStore(tmp), smoke=smoke))
    else:
        report = asyncio.run(_bench(ResultStore(store_root), smoke=smoke))
    if output is not None:
        write_json(report, Path(output))
    return report


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a benchmark report."""
    lines = [
        f"serve benchmark ({'smoke' if report.get('smoke') else 'full'})"
    ]
    for level in report["levels"]:
        cold, warm = level["cold"], level["warm"]
        speedup = level["warm_speedup_p50"]
        lines.append(
            f"  c={level['concurrency']:<4} "
            f"cold p50 {cold['p50_ms']:8.2f} ms  p99 {cold['p99_ms']:8.2f} ms"
            f"  {cold['requests_per_s']:8.1f} req/s | "
            f"warm p50 {warm['p50_ms']:7.2f} ms  p99 {warm['p99_ms']:7.2f} ms"
            f"  {warm['requests_per_s']:8.1f} req/s | "
            f"speedup {speedup:6.1f}x"
        )
    coalesce = report["coalesce"]
    lines.append(
        f"  coalesce: {coalesce['requests']} identical requests -> "
        f"{coalesce['solves']} solve(s), {coalesce['coalesced']} coalesced, "
        f"{coalesce['cache_hits']} cache hit(s)"
    )
    batch = report["batch"]
    lines.append(
        f"  batch: {batch['requests']} fixed_point requests -> "
        f"{batch['solver_calls']} solver call(s) in "
        f"{batch['batches']} batch(es)"
    )
    return "\n".join(lines)
