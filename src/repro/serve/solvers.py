"""Pure request solvers: the cache-entering compute of the serving layer.

:func:`solve_request` maps one normalised :class:`SolveRequest` to a
plain JSON-typed result document, and :func:`solve_fixed_point_batch`
folds many ``fixed_point`` requests into a single
:func:`repro.bianchi.solve_heterogeneous_batch` call (the service's
micro-batching scheduler groups concurrent requests by ``(n, max_stage)``
and hands each group here).

Both functions are **pure**: a served result is committed to the
content-addressed store under the request digest and replayed on every
later hit, so - exactly like campaign tasks - the cache is only sound if
these functions are deterministic in their inputs.  ``ANALYSIS_ROOTS``
registers them with ``repro.lint --deep`` (REPRO101), which certifies
the whole call tree free of I/O, clock, environment and entropy effects;
all timing, store traffic and observability for the request lifecycle
live in :mod:`repro.serve.service`, outside the certified region.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.errors import ServeError
from repro.experiments.export import result_to_dict
from repro.bianchi.batched import solve_heterogeneous_batch
from repro.bianchi.meanfield import solve_mean_field_batch
from repro.game.definition import MACGame
from repro.game.deviation import deviation_table
from repro.game.equilibrium import analyze_equilibria
from repro.game.utility import symmetric_utility_curve
from repro.phy.parameters import (
    AccessMode,
    PhyParameters,
    default_parameters,
    parameters_80211b,
)
from repro.phy.timing import slot_times
from repro.serve.requests import SolveRequest

__all__ = [
    "solve_fixed_point_batch",
    "solve_mean_field_request_batch",
    "solve_request",
]

#: Cache-entering analysis roots for ``repro.lint --deep`` (REPRO101):
#: everything a served digest maps to was produced by one of these
#: calls; replaying a cached response is only sound if they are pure
#: functions of the canonical request params.
ANALYSIS_ROOTS = (
    "repro.serve.solvers.solve_request",
    "repro.serve.solvers.solve_fixed_point_batch",
    "repro.serve.solvers.solve_mean_field_request_batch",
)


def _phy(preset: str) -> PhyParameters:
    if preset == "80211b":
        return parameters_80211b()
    return default_parameters()


def _game(params: Dict[str, Any]) -> MACGame:
    return MACGame(
        n_players=int(params["n_nodes"]),
        params=_phy(str(params["preset"])),
        mode=AccessMode(str(params["mode"])),
    )


def _solve_equilibrium(params: Dict[str, Any]) -> Dict[str, Any]:
    phy = _phy(str(params["preset"]))
    times = slot_times(phy, AccessMode(str(params["mode"])))
    analysis = analyze_equilibria(
        int(params["n_nodes"]),
        phy,
        times,
        ignore_cost=bool(params["ignore_cost"]),
    )
    document = result_to_dict(analysis)
    document["ne_windows"] = [
        analysis.window_breakeven,
        analysis.window_star,
    ]
    return document


def _solve_best_response(params: Dict[str, Any]) -> Dict[str, Any]:
    game = _game(params)
    table = deviation_table(
        game,
        reaction_stages=int(params["reaction_stages"]),
        reference_window=params["reference_window"],
    )
    best = table.best(float(params["discount"]))
    document = result_to_dict(best)
    document["gain"] = best.gain
    document["profitable"] = best.profitable
    return document


def _solve_deviation_table(params: Dict[str, Any]) -> Dict[str, Any]:
    game = _game(params)
    table = deviation_table(
        game,
        reaction_stages=int(params["reaction_stages"]),
        reference_window=params["reference_window"],
        candidates=params["candidates"],
    )
    return result_to_dict(table)


def _solve_curve(params: Dict[str, Any]) -> Dict[str, Any]:
    phy = _phy(str(params["preset"]))
    times = slot_times(phy, AccessMode(str(params["mode"])))
    windows = [float(w) for w in params["windows"]]
    utilities = symmetric_utility_curve(
        windows,
        int(params["n_nodes"]),
        phy,
        times,
        ignore_cost=bool(params["ignore_cost"]),
    )
    return {
        "windows": windows,
        "utilities": result_to_dict(utilities),
    }


def _solve_fixed_point(params: Dict[str, Any]) -> Dict[str, Any]:
    return solve_fixed_point_batch(
        [[float(w) for w in params["windows"]]],
        int(params["max_stage"]),
    )[0]


def _solve_mean_field(params: Dict[str, Any]) -> Dict[str, Any]:
    return solve_mean_field_request_batch(
        [[float(w) for w in params["type_windows"]]],
        [[float(c) for c in params["type_counts"]]],
        int(params["max_stage"]),
    )[0]


_SOLVERS = {
    "equilibrium": _solve_equilibrium,
    "best_response": _solve_best_response,
    "deviation_table": _solve_deviation_table,
    "curve": _solve_curve,
    "fixed_point": _solve_fixed_point,
    "mean_field": _solve_mean_field,
}


def solve_request(request: SolveRequest) -> Dict[str, Any]:
    """Resolve one request to a plain JSON-typed result document."""
    solver = _SOLVERS.get(request.kind)
    if solver is None:
        raise ServeError(f"unknown request kind {request.kind!r}")
    return solver(request.params)


def solve_fixed_point_batch(
    windows: Sequence[Sequence[float]], max_stage: int
) -> List[Dict[str, Any]]:
    """Solve many same-shape ``fixed_point`` requests in one batched call.

    ``windows`` must be rectangular (every request the same ``n``); the
    stacked ``(B, n)`` family goes through one
    :func:`~repro.bianchi.batched.solve_heterogeneous_batch` call and the
    result is split back into one document per request, identical to what
    a solo :func:`solve_request` would have produced.
    """
    stacked = np.asarray([list(w) for w in windows], dtype=float)
    solution = solve_heterogeneous_batch(stacked, int(max_stage))
    documents: List[Dict[str, Any]] = []
    for i in range(solution.n_instances):
        documents.append(
            {
                "tau": result_to_dict(solution.tau[i]),
                "collision": result_to_dict(solution.collision[i]),
                "residual": result_to_dict(solution.residual[i]),
                "iterations": int(solution.iterations[i]),
                "newton": bool(solution.newton[i]),
            }
        )
    return documents


def solve_mean_field_request_batch(
    type_windows: Sequence[Sequence[float]],
    type_counts: Sequence[Sequence[float]],
    max_stage: int,
) -> List[Dict[str, Any]]:
    """Solve many same-K ``mean_field`` requests in one batched call.

    The mean-field analogue of :func:`solve_fixed_point_batch`: requests
    sharing ``(K, max_stage)`` stack into one ``(B, K)``
    :func:`~repro.bianchi.meanfield.solve_mean_field_batch` call - each
    lane a whole *population*, however large its node count.
    """
    stacked_w = np.asarray([list(w) for w in type_windows], dtype=float)
    stacked_n = np.asarray([list(c) for c in type_counts], dtype=float)
    solution = solve_mean_field_batch(stacked_w, stacked_n, int(max_stage))
    documents: List[Dict[str, Any]] = []
    for i in range(solution.n_instances):
        documents.append(
            {
                "tau": result_to_dict(solution.tau[i]),
                "collision": result_to_dict(solution.collision[i]),
                "population": float(solution.population[i]),
                "residual": result_to_dict(solution.residual[i]),
                "iterations": int(solution.iterations[i]),
                "newton": bool(solution.newton[i]),
            }
        )
    return documents
