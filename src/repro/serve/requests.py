"""Request model of the serving layer: kinds, canonical params, digests.

A solve request is ``{"kind": ..., "params": {...}}``.  Parsing
normalises the params against the kind's schema (defaults filled in,
unknown keys rejected, values canonicalized through the store's
:func:`~repro.store.digest.canonicalize`), so two requests that mean the
same solve always produce the same request digest - the key under which
in-flight coalescing and the store-backed cache operate.

The digest deliberately reuses :func:`repro.store.compute_digest` with a
``serve.<kind>`` experiment id: served results live in the same
content-addressed store as experiment runs and campaign tasks, carry the
package version in their identity, and are inspectable with the ordinary
``repro-experiments store`` tooling.

Wire encoding goes through :func:`encode_json`, which routes every
payload through :func:`repro.experiments.export.result_to_dict` and
``json.dumps(..., allow_nan=False)`` - the same canonicalization the
exporters use - so ``NaN``/``Infinity`` can never silently cross the
wire as the non-standard JSON tokens (they become ``null``, REPRO003's
float discipline applied to the protocol boundary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ServeError
from repro.experiments.export import to_json
from repro.store import canonicalize, compute_digest

__all__ = [
    "REQUEST_KINDS",
    "SolveRequest",
    "encode_json",
    "parse_request",
]


def _positive_int(value: Any, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServeError(f"{name} must be an integer, got {value!r}")
    if value < 1:
        raise ServeError(f"{name} must be >= 1, got {value!r}")
    return value


def _window_vector(value: Any, name: str) -> Tuple[float, ...]:
    if not isinstance(value, (list, tuple)) or not value:
        raise ServeError(
            f"{name} must be a non-empty list of windows, got {value!r}"
        )
    windows = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise ServeError(
                f"{name} entries must be numbers, got {item!r}"
            )
        windows.append(float(item))
    return tuple(windows)


#: Request kinds -> {param: (default, required)}.  ``None`` defaults that
#: are *not* required stay None ("use the library default").
_SCHEMAS: Dict[str, Dict[str, Tuple[Any, bool]]] = {
    "equilibrium": {
        "n_nodes": (None, True),
        "mode": ("basic", False),
        "preset": ("default", False),
        "ignore_cost": (True, False),
    },
    "best_response": {
        "n_nodes": (None, True),
        "discount": (None, True),
        "mode": ("basic", False),
        "preset": ("default", False),
        "reaction_stages": (1, False),
        "reference_window": (None, False),
    },
    "deviation_table": {
        "n_nodes": (None, True),
        "mode": ("basic", False),
        "preset": ("default", False),
        "reaction_stages": (1, False),
        "reference_window": (None, False),
        "candidates": (None, False),
    },
    "curve": {
        "n_nodes": (None, True),
        "windows": (None, True),
        "mode": ("basic", False),
        "preset": ("default", False),
        "ignore_cost": (False, False),
    },
    "fixed_point": {
        "windows": (None, True),
        "max_stage": (5, False),
    },
    "mean_field": {
        "type_windows": (None, True),
        "type_counts": (None, True),
        "max_stage": (5, False),
    },
}

#: The request kinds the service resolves, sorted.
REQUEST_KINDS: Tuple[str, ...] = tuple(sorted(_SCHEMAS))

_MODES = ("basic", "rts_cts")
_PRESETS = ("default", "80211b")


@dataclass(frozen=True)
class SolveRequest:
    """One normalised solve request.

    ``params`` is the canonical parameter document (defaults filled,
    values canonicalized); ``digest`` is the store/coalescing key,
    computed as ``compute_digest("serve.<kind>", params)``.
    """

    kind: str
    params: Dict[str, Any]
    digest: str

    @property
    def experiment_id(self) -> str:
        """The store experiment id served results are filed under."""
        return f"serve.{self.kind}"


def _check_common(kind: str, params: Dict[str, Any]) -> None:
    if "n_nodes" in params:
        params["n_nodes"] = _positive_int(params["n_nodes"], "n_nodes")
        if params["n_nodes"] < 2:
            raise ServeError(
                f"n_nodes must be >= 2, got {params['n_nodes']!r}"
            )
    if "mode" in params and params["mode"] not in _MODES:
        raise ServeError(
            f"mode must be one of {_MODES}, got {params['mode']!r}"
        )
    if "preset" in params and params["preset"] not in _PRESETS:
        raise ServeError(
            f"preset must be one of {_PRESETS}, got {params['preset']!r}"
        )
    if "reaction_stages" in params:
        params["reaction_stages"] = _positive_int(
            params["reaction_stages"], "reaction_stages"
        )
    if params.get("reference_window") is not None:
        params["reference_window"] = _positive_int(
            params["reference_window"], "reference_window"
        )
    if "discount" in params:
        discount = params["discount"]
        if isinstance(discount, bool) or not isinstance(
            discount, (int, float)
        ):
            raise ServeError(
                f"discount must be a number, got {discount!r}"
            )
        if not 0.0 < float(discount) < 1.0:
            raise ServeError(
                f"discount must lie in (0, 1), got {discount!r}"
            )
        params["discount"] = float(discount)
    if kind == "curve":
        params["windows"] = list(_window_vector(params["windows"], "windows"))
    if kind == "fixed_point":
        params["windows"] = list(
            _window_vector(params["windows"], "windows")
        )
        params["max_stage"] = _positive_int(params["max_stage"], "max_stage")
    if kind == "mean_field":
        params["type_windows"] = list(
            _window_vector(params["type_windows"], "type_windows")
        )
        counts = params["type_counts"]
        if not isinstance(counts, (list, tuple)) or not counts:
            raise ServeError(
                "type_counts must be a non-empty list of node counts, "
                f"got {counts!r}"
            )
        if len(counts) != len(params["type_windows"]):
            raise ServeError(
                f"type_counts has {len(counts)} entries but type_windows "
                f"has {len(params['type_windows'])}"
            )
        normalised = []
        for item in counts:
            if isinstance(item, bool) or not isinstance(item, (int, float)):
                raise ServeError(
                    f"type_counts entries must be numbers, got {item!r}"
                )
            if float(item) <= 0.0:
                raise ServeError(
                    f"type_counts entries must be positive, got {item!r}"
                )
            normalised.append(float(item))
        params["type_counts"] = normalised
        params["max_stage"] = _positive_int(params["max_stage"], "max_stage")
    if kind == "deviation_table" and params.get("candidates") is not None:
        candidates = params["candidates"]
        if not isinstance(candidates, (list, tuple)) or not candidates:
            raise ServeError(
                f"candidates must be a non-empty list, got {candidates!r}"
            )
        params["candidates"] = [
            _positive_int(c, "candidates entry") for c in candidates
        ]


def parse_request(document: Any) -> SolveRequest:
    """Validate and normalise one request document.

    Parameters
    ----------
    document:
        ``{"kind": <str>, "params": {...}}`` (``params`` optional when
        every field of the kind has a default).

    Raises
    ------
    ServeError
        On unknown kinds, missing required params, unknown params or
        out-of-domain values.
    """
    if not isinstance(document, Mapping):
        raise ServeError(
            f"request must be a JSON object, got {type(document).__name__}"
        )
    kind = document.get("kind")
    if not isinstance(kind, str) or kind not in _SCHEMAS:
        raise ServeError(
            f"unknown request kind {kind!r}; expected one of {REQUEST_KINDS}"
        )
    raw = document.get("params", {})
    if raw is None:
        raw = {}
    if not isinstance(raw, Mapping):
        raise ServeError(
            f"params must be a JSON object, got {type(raw).__name__}"
        )
    schema = _SCHEMAS[kind]
    unknown = sorted(set(raw) - set(schema))
    if unknown:
        raise ServeError(
            f"unknown param(s) {unknown} for kind {kind!r}; "
            f"expected a subset of {sorted(schema)}"
        )
    params: Dict[str, Any] = {}
    for name, (default, required) in schema.items():
        if name in raw:
            params[name] = raw[name]
        elif required:
            raise ServeError(
                f"request kind {kind!r} requires param {name!r}"
            )
        else:
            params[name] = default
    _check_common(kind, params)
    params = canonicalize(params)
    digest = compute_digest(f"serve.{kind}", params)
    return SolveRequest(kind=kind, params=params, digest=digest)


def encode_json(payload: Any) -> bytes:
    """Encode one wire payload as compact, NaN-free UTF-8 JSON.

    Non-finite floats become ``null`` (:func:`to_json` routes the
    payload through :func:`result_to_dict` first), and its
    ``allow_nan=False`` guarantees the encoder can never fall back to
    the non-standard ``NaN``/``Infinity`` tokens.
    """
    return to_json(payload, indent=None).encode("utf-8")
