"""The asyncio solve service: cache, coalescing, micro-batching, commits.

:class:`EquilibriumService` resolves :class:`~repro.serve.requests.SolveRequest`
objects through four layers, cheapest first:

1. **Store cache.**  The request digest is looked up in the ordinary
   content-addressed results store; a verified hit is returned without
   touching a solver.  Corrupt entries are treated as misses (the commit
   after the re-solve heals them).
2. **Coalescing.**  Identical in-flight solves share one future keyed by
   the request digest: N concurrent requests for the same digest cost
   exactly one solve, and every waiter receives the same result (or the
   same error).  Waiters await the shared future through
   :func:`asyncio.shield`, so one cancelled client never cancels the
   solve out from under the others.  The in-flight entry is removed only
   *after* the store commit - a request arriving between solve
   completion and commit still coalesces instead of racing the store.
3. **Micro-batching.**  Concurrent ``fixed_point`` requests are folded
   by a short batching window into single
   :func:`~repro.bianchi.batched.solve_heterogeneous_batch` calls, and
   concurrent ``mean_field`` requests into single
   :func:`~repro.bianchi.meanfield.solve_mean_field_batch` calls,
   grouped by ``(kind, width, max_stage)`` so each stacked family is
   rectangular.
4. **Worker pool.**  Cache misses run the pure solvers of
   :mod:`repro.serve.solvers` on a thread pool; each solo solve records
   into its own :class:`~repro.obs.MemoryRecorder` and its profile is
   committed next to the result, exactly like campaign tasks.  (Batched
   solves commit without a profile: the batch composition is
   timing-dependent, and per-request profiles must stay deterministic.)

Request-lifecycle observability goes to the ambient recorder: counters
for the logical outcomes (``serve.cache`` hit/miss, ``serve.coalesced``,
``serve.batch.requests``, ``serve.solves``), spans around store I/O, and
gauges for the timing data (queue wait, solve and commit seconds).
Counters and spans enter profile digests, gauges do not - which is why
wall-clock always travels as a gauge and never as a counter or
histogram: a profile of a deterministic workload digests identically
across machines and concurrency levels.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import IntegrityError, ReproError, ServeError
from repro.obs import MemoryRecorder, build_profile, span, use_recorder
from repro.obs.metrics import gauge_set as _gauge
from repro.obs.metrics import inc as _inc
from repro.serve.requests import SolveRequest, parse_request
from repro.serve.solvers import (
    solve_fixed_point_batch,
    solve_mean_field_request_batch,
    solve_request,
)
from repro.store import ResultStore

__all__ = ["EquilibriumService", "ServiceStats"]

#: Default seconds the micro-batcher waits for companions before flushing.
DEFAULT_BATCH_WINDOW_S = 0.002

#: Default cap on how many requests one batched solve may fold.
DEFAULT_MAX_BATCH = 64

_SolveValue = Tuple[Dict[str, Any], bool]  # (result document, cached?)


class ServiceStats:
    """Monotonic counters of one service instance (the /stats payload)."""

    __slots__ = (
        "requests",
        "cache_hits",
        "cache_misses",
        "coalesced",
        "solves",
        "batches",
        "batched_requests",
        "errors",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.coalesced = 0
        self.solves = 0
        self.batches = 0
        self.batched_requests = 0
        self.errors = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict view for the ``/stats`` endpoint and the bench."""
        return {name: getattr(self, name) for name in self.__slots__}


def _solve_with_events(
    solver: Callable[[SolveRequest], Dict[str, Any]], request: SolveRequest
) -> Tuple[Dict[str, Any], List[Dict[str, Any]], float]:
    """Worker-side solo solve: pure solver under a private recorder.

    Runs on an executor thread, whose ambient recorder is the null
    recorder (contextvars do not cross ``run_in_executor``), so the
    events captured here are exactly the pure solve's and nothing else.
    """
    recorder = MemoryRecorder()
    started = time.perf_counter()
    with use_recorder(recorder):
        result = solver(request)
    return result, recorder.events, time.perf_counter() - started


def _consume_exception(future: "asyncio.Future[Any]") -> None:
    """Mark a shared future's error retrieved even if every waiter left."""
    if not future.cancelled() and future.exception() is not None:
        pass


#: Request kinds the micro-batcher folds.  ``fixed_point`` groups by the
#: per-node vector length; ``mean_field`` by the number of types - a
#: group key is ``(kind, width, max_stage)`` so every stacked family is
#: rectangular.
BATCHABLE_KINDS = ("fixed_point", "mean_field")

_BatchKey = Tuple[str, int, int]


class _MicroBatcher:
    """Folds concurrent batchable requests into batched solves.

    Requests are grouped by ``(kind, width, max_stage)``; the first
    request of a group opens a ``window_s`` timer, companions arriving
    within the window join the group, and the flush hands the stacked
    payloads to the kind's batch solver on the executor.  A group also
    flushes early when it reaches ``max_batch``.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        executor: ThreadPoolExecutor,
        batch_solvers: Dict[str, Callable[..., List[Dict[str, Any]]]],
        stats: ServiceStats,
        *,
        window_s: float,
        max_batch: int,
    ) -> None:
        self._loop = loop
        self._executor = executor
        self._batch_solvers = batch_solvers
        self._stats = stats
        self._window_s = window_s
        self._max_batch = max_batch
        self._pending: Dict[
            _BatchKey,
            List[Tuple[SolveRequest, "asyncio.Future[Dict[str, Any]]"]],
        ] = {}
        self._timers: Dict[_BatchKey, asyncio.TimerHandle] = {}
        self._tasks: set = set()

    def handles(self, kind: str) -> bool:
        """Whether this batcher has a batch solver for ``kind``."""
        return kind in self._batch_solvers

    @staticmethod
    def _key(request: SolveRequest) -> _BatchKey:
        if request.kind == "mean_field":
            width = len(request.params["type_windows"])
        else:
            width = len(request.params["windows"])
        return (request.kind, width, int(request.params["max_stage"]))

    async def submit(self, request: SolveRequest) -> Dict[str, Any]:
        key = self._key(request)
        future: "asyncio.Future[Dict[str, Any]]" = self._loop.create_future()
        future.add_done_callback(_consume_exception)
        bucket = self._pending.get(key)
        if bucket is None:
            bucket = []
            self._pending[key] = bucket
            self._timers[key] = self._loop.call_later(
                self._window_s, self._flush, key
            )
        bucket.append((request, future))
        if len(bucket) >= self._max_batch:
            self._flush(key)
        return await future

    def _flush(self, key: _BatchKey) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        batch = self._pending.pop(key, None)
        if not batch:
            return
        task = self._loop.create_task(self._run(key, batch))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run(
        self,
        key: _BatchKey,
        batch: List[Tuple[SolveRequest, "asyncio.Future[Dict[str, Any]]"]],
    ) -> None:
        kind, _width, max_stage = key
        solver = self._batch_solvers[kind]
        if kind == "mean_field":
            type_windows = [
                request.params["type_windows"] for request, _ in batch
            ]
            type_counts = [
                request.params["type_counts"] for request, _ in batch
            ]
            call_args: Tuple[Any, ...] = (type_windows, type_counts, max_stage)
        else:
            windows = [request.params["windows"] for request, _ in batch]
            call_args = (windows, max_stage)
        try:
            results = await self._loop.run_in_executor(
                self._executor, solver, *call_args
            )
        except BaseException as error:  # noqa: BLE001 - forwarded to waiters
            for _, future in batch:
                if not future.done():
                    future.set_exception(error)
            return
        self._stats.solves += 1
        self._stats.batches += 1
        self._stats.batched_requests += len(batch)
        _inc("serve.solves", 1, mode="batched")
        _inc("serve.batch.flushes", 1, kind=kind)
        _inc("serve.batch.requests", len(batch), kind=kind)
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)

    def drain(self) -> None:
        """Flush every open group immediately (service shutdown)."""
        for key in list(self._pending):
            self._flush(key)


class EquilibriumService:
    """Async equilibrium-as-a-service over the results store (module doc).

    Parameters
    ----------
    store:
        Results store used as the shared response cache; defaults to
        :meth:`ResultStore.default`.
    cache:
        Disable to solve every request fresh (``repro serve --no-cache``);
        coalescing still applies.
    max_workers:
        Thread-pool size for solves and store commits.
    batch_window_s, max_batch:
        Micro-batching knobs; ``batch_window_s=0`` still batches
        requests that are already queued concurrently (the timer fires
        on the next loop pass).
    solver, batch_solver, mean_field_batch_solver:
        Injectable solver callables (tests substitute crashing or
        recording fakes); default to the pure solvers of
        :mod:`repro.serve.solvers`.  ``batch_solver`` folds
        ``fixed_point`` groups, ``mean_field_batch_solver`` folds
        ``mean_field`` groups.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        *,
        cache: bool = True,
        max_workers: Optional[int] = None,
        batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
        max_batch: int = DEFAULT_MAX_BATCH,
        solver: Optional[Callable[[SolveRequest], Dict[str, Any]]] = None,
        batch_solver: Optional[
            Callable[[Sequence[Sequence[float]], int], List[Dict[str, Any]]]
        ] = None,
        mean_field_batch_solver: Optional[
            Callable[
                [
                    Sequence[Sequence[float]],
                    Sequence[Sequence[float]],
                    int,
                ],
                List[Dict[str, Any]],
            ]
        ] = None,
    ) -> None:
        if batch_window_s < 0:
            raise ServeError(
                f"batch_window_s must be >= 0, got {batch_window_s!r}"
            )
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch!r}")
        self.store = store if store is not None else ResultStore.default()
        self.cache_enabled = bool(cache)
        self.stats = ServiceStats()
        self._solver = solver if solver is not None else solve_request
        self._batch_solvers: Dict[str, Callable[..., List[Dict[str, Any]]]] = {
            "fixed_point": (
                batch_solver
                if batch_solver is not None
                else solve_fixed_point_batch
            ),
            "mean_field": (
                mean_field_batch_solver
                if mean_field_batch_solver is not None
                else solve_mean_field_request_batch
            ),
        }
        self._max_workers = max_workers
        self._batch_window_s = float(batch_window_s)
        self._max_batch = int(max_batch)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._batcher: Optional[_MicroBatcher] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._inflight: Dict[str, "asyncio.Future[_SolveValue]"] = {}
        self._tasks: set = set()
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def _ensure_started(self) -> asyncio.AbstractEventLoop:
        if self._closed:
            raise ServeError("service is closed")
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-serve",
            )
            self._batcher = _MicroBatcher(
                loop,
                self._executor,
                self._batch_solvers,
                self.stats,
                window_s=self._batch_window_s,
                max_batch=self._max_batch,
            )
        elif self._loop is not loop:
            raise ServeError(
                "service is bound to a different event loop; create one "
                "service per loop"
            )
        return loop

    async def close(self) -> None:
        """Flush batches, wait out in-flight solves, stop the pool."""
        self._closed = True
        if self._batcher is not None:
            self._batcher.drain()
        pending = [task for task in self._tasks if not task.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    @property
    def inflight(self) -> int:
        """Number of distinct digests currently being solved."""
        return len(self._inflight)

    # -- solving -------------------------------------------------------
    async def solve_document(self, document: Any) -> Dict[str, Any]:
        """Parse one raw request document and solve it."""
        return await self.solve(parse_request(document))

    async def solve(self, request: SolveRequest) -> Dict[str, Any]:
        """Resolve one request; returns the wire response document.

        The response carries the request identity (``kind``, ``digest``)
        and provenance flags: ``cached`` (served from the store without
        solving) and ``coalesced`` (this call attached to an in-flight
        solve instead of starting one).
        """
        loop = self._ensure_started()
        self.stats.requests += 1
        _inc("serve.requests", 1, kind=request.kind)
        shared = self._inflight.get(request.digest)
        if shared is not None:
            self.stats.coalesced += 1
            _inc("serve.coalesced", 1, kind=request.kind)
            result, cached = await asyncio.shield(shared)
            return self._response(
                request, result, cached=cached, coalesced=True
            )
        future: "asyncio.Future[_SolveValue]" = loop.create_future()
        future.add_done_callback(_consume_exception)
        self._inflight[request.digest] = future
        resolver = loop.create_task(self._resolve(request, future))
        self._tasks.add(resolver)
        resolver.add_done_callback(self._tasks.discard)
        result, cached = await asyncio.shield(future)
        return self._response(request, result, cached=cached, coalesced=False)

    async def _resolve(
        self, request: SolveRequest, future: "asyncio.Future[_SolveValue]"
    ) -> None:
        """Owner of one digest's solve: cache, solver, commit, publish.

        Every exit path pops the in-flight entry and settles the shared
        future, so waiters can neither hang nor observe a stale entry; a
        solver crash becomes the future's exception and reaches *all*
        coalesced waiters.
        """
        try:
            queued = time.perf_counter()
            if self.cache_enabled:
                with span("serve.store.lookup", kind=request.kind):
                    payload = self._cache_lookup(request.digest)
                if payload is not None:
                    self.stats.cache_hits += 1
                    _inc("serve.cache", 1, outcome="hit", kind=request.kind)
                    self._inflight.pop(request.digest, None)
                    future.set_result((payload, True))
                    return
                self.stats.cache_misses += 1
                _inc("serve.cache", 1, outcome="miss", kind=request.kind)
            loop = self._loop
            assert loop is not None  # _ensure_started ran in solve()
            solve_started = time.perf_counter()
            _gauge(
                "serve.queue_wait_s",
                solve_started - queued,
                kind=request.kind,
            )
            batcher = self._batcher
            if batcher is not None and batcher.handles(request.kind):
                result = await batcher.submit(request)
                events: List[Dict[str, Any]] = []
                wall = time.perf_counter() - solve_started
            else:
                assert self._executor is not None
                result, events, wall = await loop.run_in_executor(
                    self._executor, _solve_with_events, self._solver, request
                )
                self.stats.solves += 1
                _inc("serve.solves", 1, mode="solo")
            _gauge("serve.solve_s", wall, kind=request.kind)
            if self.cache_enabled:
                commit_started = time.perf_counter()
                assert self._executor is not None
                await loop.run_in_executor(
                    self._executor, self._commit, request, result, events, wall
                )
                _gauge(
                    "serve.commit_s",
                    time.perf_counter() - commit_started,
                    kind=request.kind,
                )
            # Pop only after the commit: a request landing between solve
            # completion and commit coalesces onto this future instead
            # of missing the cache and re-solving.
            self._inflight.pop(request.digest, None)
            future.set_result((result, False))
        except BaseException as error:  # noqa: BLE001 - published to waiters
            self.stats.errors += 1
            _inc("serve.errors", 1, kind=request.kind)
            self._inflight.pop(request.digest, None)
            if not future.done():
                if isinstance(error, ReproError):
                    future.set_exception(error)
                else:
                    future.set_exception(
                        ServeError(
                            f"solver failed for kind {request.kind!r}: "
                            f"{type(error).__name__}: {error}"
                        )
                    )
            if isinstance(error, asyncio.CancelledError):
                raise

    # -- store plumbing (service layer: impure by design) --------------
    def _cache_lookup(self, digest: str) -> Optional[Dict[str, Any]]:
        """Verified store read; corrupt entries degrade to a miss."""
        if not self.store.contains(digest):
            return None
        try:
            payload = self.store.load_result(digest)
        except IntegrityError:
            return None
        return payload if isinstance(payload, dict) else {"value": payload}

    def _commit(
        self,
        request: SolveRequest,
        result: Dict[str, Any],
        events: List[Dict[str, Any]],
        wall: float,
    ) -> None:
        """Commit one solved request to the store (executor thread).

        ``put`` serialises against concurrent writers through the
        store's advisory lock; the committed profile is built from the
        worker-side events only, so its digest is a pure function of the
        request (batched solves pass no events and commit no profile).
        """
        profile = None
        if events:
            profile = build_profile(
                events,
                meta={
                    "experiment_id": request.experiment_id,
                    "params": request.params,
                    "serve": True,
                },
            )
        self.store.put(
            request.experiment_id,
            request.params,
            result,
            wall_time_s=wall,
            digest=request.digest,
            profile=profile,
        )

    def _response(
        self,
        request: SolveRequest,
        result: Dict[str, Any],
        *,
        cached: bool,
        coalesced: bool,
    ) -> Dict[str, Any]:
        return {
            "kind": request.kind,
            "digest": request.digest,
            "cached": cached,
            "coalesced": coalesced,
            "result": result,
        }
