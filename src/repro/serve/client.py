"""Blocking stdlib client for the solve server.

:class:`ServeClient` wraps :mod:`http.client` (keep-alive on one
connection) so scripts, tests and the load generator can talk to a
running ``repro-experiments serve`` without any HTTP dependency::

    with ServeClient("127.0.0.1", 8351) as client:
        response = client.solve("equilibrium", {"n_nodes": 10})
        response["result"]["window_star"]

Server-reported errors are raised as :class:`~repro.errors.ServeError`
with the server's error type and message preserved.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ServeError
from repro.serve.requests import encode_json

__all__ = ["ServeClient"]


class ServeClient:
    """One keep-alive HTTP connection to a solve server."""

    def __init__(
        self, host: str, port: int, *, timeout_s: float = 60.0
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self._connection: Optional[http.client.HTTPConnection] = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Drop the underlying connection (reopened on next use)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    # -- transport -----------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Any = None
    ) -> Any:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        body = None
        headers = {}
        if payload is not None:
            body = encode_json(payload)
            headers["Content-Type"] = "application/json"
        try:
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        except (ConnectionError, http.client.HTTPException, OSError) as error:
            self.close()
            raise ServeError(
                f"request to {self.host}:{self.port} failed: {error}"
            ) from error
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServeError(
                f"server returned invalid JSON ({error})"
            ) from error
        if response.status != 200:
            message = "unknown error"
            if isinstance(document, dict):
                message = str(document.get("error", message))
            raise ServeError(
                f"server answered {response.status}: {message}"
            )
        return document

    # -- API -----------------------------------------------------------
    def solve(
        self, kind: str, params: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Solve one request; returns the response document."""
        return self._request(
            "POST", "/v1/solve", {"kind": kind, "params": params or {}}
        )

    def solve_many(
        self, documents: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Solve a list of request documents in one round trip.

        Entries resolve concurrently on the server (identical entries
        coalesce; ``fixed_point`` entries micro-batch).  Per-entry
        failures come back as ``{"error": ..., "type": ...}`` documents
        in place, not as an exception.
        """
        return self._request("POST", "/v1/solve", list(documents))

    def health(self) -> Dict[str, Any]:
        """Liveness probe (``GET /healthz``)."""
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, int]:
        """The service's monotonic counters (``GET /stats``)."""
        return self._request("GET", "/stats")
