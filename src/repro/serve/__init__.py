"""Equilibrium-as-a-service: async serving layer over the results store.

Long-running workloads (parameter exploration UIs, sibling simulations,
CI dashboards) keep re-asking the model the same questions: what is the
efficient NE window ``W_c*`` at this network size, how profitable is a
deviation, what does the utility curve look like.  This package turns
those questions into a service instead of a script:

* :mod:`repro.serve.requests` - request kinds (``equilibrium``,
  ``best_response``, ``deviation_table``, ``curve``, ``fixed_point``),
  canonical params and the request digest (the cache/coalescing key).
* :mod:`repro.serve.solvers` - the pure solvers behind each kind,
  REPRO101-certified via their ``ANALYSIS_ROOTS``.
* :mod:`repro.serve.service` - :class:`EquilibriumService`: store-backed
  caching, in-flight request coalescing, micro-batching of concurrent
  ``fixed_point`` solves and worker-pool execution.
* :mod:`repro.serve.protocol` - stdlib-only asyncio HTTP/1.1 server
  (``repro-experiments serve``).
* :mod:`repro.serve.client` - blocking stdlib client.
* :mod:`repro.serve.bench` - the load-generator benchmark behind
  ``repro-experiments bench-serve`` (``BENCH_serve.json``).

See ``docs/serving.md`` for the protocol, deployment recipes (including
multi-writer sharding against one shared store) and the benchmark
methodology.
"""

from repro.serve.client import ServeClient
from repro.serve.protocol import ServeServer
from repro.serve.requests import (
    REQUEST_KINDS,
    SolveRequest,
    encode_json,
    parse_request,
)
from repro.serve.service import EquilibriumService, ServiceStats
from repro.serve.solvers import solve_fixed_point_batch, solve_request

__all__ = [
    "REQUEST_KINDS",
    "EquilibriumService",
    "ServeClient",
    "ServeServer",
    "ServiceStats",
    "SolveRequest",
    "encode_json",
    "parse_request",
    "solve_fixed_point_batch",
    "solve_request",
]
