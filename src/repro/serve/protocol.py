"""Minimal HTTP/1.1 JSON transport for the solve service (stdlib only).

The server speaks just enough HTTP for interoperability with ``curl``
and :class:`~repro.serve.client.ServeClient` - no external web framework,
matching the repository's numpy/scipy-only dependency policy:

* ``POST /v1/solve`` - body is one request document
  ``{"kind": ..., "params": {...}}`` or a JSON list of them; the
  response is the matching response document (or list).  A list is
  resolved concurrently, so its identical entries coalesce and its
  ``fixed_point`` entries micro-batch exactly like separate clients'.
* ``GET /healthz`` - liveness probe, ``{"ok": true}``.
* ``GET /stats`` - the service's monotonic counters
  (:meth:`~repro.serve.service.ServiceStats.snapshot`).

Connections are keep-alive by default (``Connection: close`` honoured);
request bodies are bounded by ``MAX_BODY_BYTES``.  Every response body
is encoded through :func:`repro.serve.requests.encode_json`, so
non-finite floats leave the process as ``null``, never as the
non-standard ``NaN``/``Infinity`` tokens.

Malformed requests map to ``400`` with ``{"error": ..., "type": ...}``;
unknown paths to ``404``; unexpected solver failures to ``500``.  The
error payload carries the exception's class name so clients can tell a
request-shape problem from a solver crash without parsing prose.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError, ServeError
from repro.serve.requests import encode_json
from repro.serve.service import EquilibriumService

__all__ = ["ServeServer", "MAX_BODY_BYTES"]

#: Upper bound on accepted request bodies (1 MiB of JSON is plenty).
MAX_BODY_BYTES = 1 << 20

#: Upper bound on one header line / total header section.
_MAX_HEADER_BYTES = 1 << 14

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
}


class _BadRequest(Exception):
    """Internal: transport-level protocol violation (maps to 400)."""


class ServeServer:
    """Asyncio TCP server exposing one :class:`EquilibriumService`.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start` to learn the bound address (the tests and the
    in-process benchmark rely on this).
    """

    def __init__(
        self,
        service: EquilibriumService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        """The bound TCP port (only valid after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServeError("server is not started")
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ServeError("server is already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's foreground mode)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting connections and shut the service down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    # -- connection handling -------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except _BadRequest as error:
                    await self._respond(
                        writer,
                        400,
                        {"error": str(error), "type": "BadRequest"},
                        keep_alive=False,
                    )
                    break
                if parsed is None:
                    break  # clean EOF between requests
                method, path, headers, body = parsed
                keep_alive = headers.get("connection", "").lower() != "close"
                status, payload = await self._dispatch(method, path, body)
                await self._respond(writer, status, payload, keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (
                ConnectionError,
                OSError,
                asyncio.CancelledError,
            ):  # pragma: no cover - teardown best-effort
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one request; None on clean EOF before a request line."""
        try:
            request_line = await reader.readuntil(b"\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise _BadRequest("truncated request line") from error
        except asyncio.LimitOverrunError as error:
            raise _BadRequest("request line too long") from error
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line {request_line!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        total = 0
        while True:
            try:
                line = await reader.readuntil(b"\r\n")
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as error:
                raise _BadRequest("truncated headers") from error
            total += len(line)
            if total > _MAX_HEADER_BYTES:
                raise _BadRequest("header section too large")
            text = line.decode("latin-1").strip()
            if not text:
                break
            name, _, value = text.partition(":")
            if not _:
                raise _BadRequest(f"malformed header line {text!r}")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError as error:
            raise _BadRequest(
                f"invalid Content-Length {length_text!r}"
            ) from error
        if length < 0 or length > MAX_BODY_BYTES:
            raise _BadRequest(
                f"Content-Length {length} outside [0, {MAX_BODY_BYTES}]"
            )
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as error:
                raise _BadRequest("truncated request body") from error
        return method, path, headers, body

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Any]:
        if method == "GET" and path == "/healthz":
            return 200, {"ok": True}
        if method == "GET" and path == "/stats":
            return 200, self.service.stats.snapshot()
        if method == "POST" and path == "/v1/solve":
            try:
                document = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                return 400, {
                    "error": f"request body is not valid JSON: {error}",
                    "type": "JSONDecodeError",
                }
            return await self._solve(document)
        return 404, {"error": f"no route for {method} {path}", "type": "NotFound"}

    async def _solve(self, document: Any) -> Tuple[int, Any]:
        if isinstance(document, list):
            # Entries resolve concurrently (coalescing/batching apply);
            # per-entry failures become inline error documents so one
            # bad entry never voids its siblings' results.
            responses = await asyncio.gather(
                *(self.service.solve_document(entry) for entry in document),
                return_exceptions=True,
            )
            documents = []
            for response in responses:
                if isinstance(response, BaseException):
                    if not isinstance(response, ReproError):
                        raise response
                    documents.append(
                        {
                            "error": str(response),
                            "type": type(response).__name__,
                        }
                    )
                else:
                    documents.append(response)
            return 200, documents
        try:
            return 200, await self.service.solve_document(document)
        except ServeError as error:
            return 400, {"error": str(error), "type": type(error).__name__}
        except ReproError as error:
            return 500, {"error": str(error), "type": type(error).__name__}

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        *,
        keep_alive: bool,
    ) -> None:
        body = encode_json(payload)
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
