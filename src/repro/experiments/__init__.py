"""Reproductions of the paper's evaluation (Section VII).

One module per table / figure / reported study:

* :mod:`repro.experiments.table1` - the network-parameter table.
* :mod:`repro.experiments.table2` - efficient NE, basic access
  (analytic ``W_c*`` vs simulated per-node optimum and variance).
* :mod:`repro.experiments.table3` - same under RTS/CTS.
* :mod:`repro.experiments.figure2` - global payoff vs common CW, basic.
* :mod:`repro.experiments.figure3` - same under RTS/CTS.
* :mod:`repro.experiments.multihop_quasi` - the Section VII.B multi-hop
  study (converged window, per-node and global quasi-optimality,
  ``p_hn`` CW-independence check).
* :mod:`repro.experiments.shortsighted` - Section V.D deviation payoffs.
* :mod:`repro.experiments.malicious` - Section V.E attacker impact.
* :mod:`repro.experiments.search_protocol` - Section V.C protocol runs.
* :mod:`repro.experiments.convergence` - TFT/GTFT convergence dynamics.

:mod:`repro.experiments.registry` indexes them; every experiment returns
a plain result object and renders through
:mod:`repro.experiments.reporting`.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.reporting import format_series, format_table

__all__ = [
    "EXPERIMENTS",
    "format_series",
    "format_table",
    "get_experiment",
    "run_experiment",
]
