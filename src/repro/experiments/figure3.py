"""Figure 3 - global payoff versus common CW, RTS/CTS access.

Same sweep as :mod:`repro.experiments.figure2` under RTS/CTS.  The paper
emphasises that this curve is even flatter past its peak than the basic
one - collisions are cheap (``Tc' << Ts'``), so over-aggressive windows
cost little - which both justifies the robustness of the efficient NE and
underlies the multi-hop approximation of Section VI.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.figure2 import GlobalPayoffCurves, run_mode
from repro.phy.parameters import AccessMode, PhyParameters

__all__ = ["run"]


def run(
    *,
    params: Optional[PhyParameters] = None,
    sizes: Sequence[int] = (5, 20, 50),
    n_points: int = 40,
    jobs: Optional[int] = None,
) -> GlobalPayoffCurves:
    """Reproduce Figure 3 (RTS/CTS access)."""
    return run_mode(
        AccessMode.RTS_CTS,
        params=params,
        sizes=sizes,
        n_points=n_points,
        jobs=jobs,
    )
