"""ASCII line plots for the paper's figures.

The reproduction is terminal-first: figures render as text.  Tables are
handled by :mod:`repro.experiments.reporting`; this module draws the
*shape* of a figure - the unimodal payoff curves of Figures 2/3 - as an
ASCII chart so a reader can eyeball the peak and the plateau without
leaving the console.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import ParameterError

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@"


def ascii_plot(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 16,
    x_label: str = "x",
    title: str = "",
) -> str:
    """Render aligned series as an ASCII chart.

    Parameters
    ----------
    x:
        Shared x values (monotone increasing).  Plotted on a *rank*
        scale - one column per consecutive grid point - which suits the
        geometric window grids of the figure sweeps.
    series:
        Mapping from series name to y values (same length as ``x``).
    width, height:
        Plot area size in characters.
    x_label:
        Label under the x axis.
    title:
        Optional title line.

    Returns
    -------
    str
        The rendered chart.
    """
    xs = np.asarray(list(x), dtype=float)
    if xs.ndim != 1 or xs.size < 2:
        raise ParameterError("x must contain at least two points")
    if np.any(np.diff(xs) <= 0):
        raise ParameterError("x must be strictly increasing")
    if not series:
        raise ParameterError("series must be non-empty")
    if width < 16 or height < 4:
        raise ParameterError("plot area too small")
    if len(series) > len(_MARKERS):
        raise ParameterError(
            f"at most {len(_MARKERS)} series supported, got {len(series)}"
        )

    matrix = []
    for name, values in series.items():
        ys = np.asarray(list(values), dtype=float)
        if ys.shape != xs.shape:
            raise ParameterError(
                f"series {name!r} has {ys.size} points, expected {xs.size}"
            )
        matrix.append(ys)
    stacked = np.stack(matrix)
    y_min = float(stacked.min())
    y_max = float(stacked.max())
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    columns = np.linspace(0, width - 1, xs.size).round().astype(int)
    for index, ys in enumerate(stacked):
        marker = _MARKERS[index]
        rows = (
            (height - 1)
            - np.round((ys - y_min) / (y_max - y_min) * (height - 1))
        ).astype(int)
        for column, row in zip(columns, rows):
            grid[row][column] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:10.4g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:10.4g} +" + "-" * width)
    lines.append(
        " " * 12
        + f"{xs[0]:<10.4g}"
        + f"{x_label:^{max(0, width - 20)}}"
        + f"{xs[-1]:>10.4g}"
    )
    legend = "   ".join(
        f"{_MARKERS[i]} = {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
