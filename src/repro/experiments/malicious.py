"""Section V.E - impact of malicious players.

A malicious node does not optimise its payoff; it plays a tiny window to
paralyse the network.  TFT - by design - follows the minimum, so the
whole network is dragged to the attacker's window.  The experiment sweeps
attacker windows below ``W_c*`` and reports the resulting network-wide
stage payoff: monotonically worse as the window shrinks, turning negative
("the network is paralyzed") for sufficiently aggressive attacks when the
energy cost dominates the residual gain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.experiments.reporting import format_table
from repro.game.definition import MACGame
from repro.game.equilibrium import efficient_window
from repro.phy.parameters import AccessMode, PhyParameters, default_parameters

__all__ = ["MaliciousResult", "MaliciousRow", "run"]


@dataclass(frozen=True)
class MaliciousRow:
    """One attacker-window point.

    Attributes
    ----------
    attack_window:
        The window the attacker (and, after TFT convergence, everyone)
        operates on.
    global_payoff:
        Network-wide utility rate after convergence.
    fraction_of_optimum:
        Same, relative to the efficient NE's global payoff.
    collapsed:
        Whether the global payoff is non-positive.
    """

    attack_window: int
    global_payoff: float
    fraction_of_optimum: float
    collapsed: bool


@dataclass(frozen=True)
class MaliciousResult:
    """The Section V.E sweep."""

    n_players: int
    reference_window: int
    reference_payoff: float
    rows: List[MaliciousRow]

    def render(self) -> str:
        """Render the sweep as a text table."""
        headers = ["attacker W", "global payoff", "vs optimum", "collapsed"]
        rows = [
            [
                row.attack_window,
                row.global_payoff,
                row.fraction_of_optimum,
                "yes" if row.collapsed else "no",
            ]
            for row in self.rows
        ]
        return format_table(
            headers,
            rows,
            title=(
                "Section V.E: malicious player dragging the network below "
                f"W_c*={self.reference_window} (n={self.n_players})"
            ),
        )


def run(
    *,
    params: Optional[PhyParameters] = None,
    n_players: int = 10,
    mode: AccessMode = AccessMode.BASIC,
    attack_windows: Optional[Sequence[int]] = None,
) -> MaliciousResult:
    """Run the malicious-impact sweep.

    ``attack_windows`` defaults to a geometric ladder from 1 up to just
    below ``W_c*``.
    """
    if params is None:
        params = default_parameters()
    game = MACGame(n_players=n_players, params=params, mode=mode)
    reference = efficient_window(n_players, params, game.times)
    reference_payoff = game.global_payoff(reference)
    if attack_windows is None:
        ladder = [1, 2, 4, 8, 16, 32, 64, 128, 256]
        attack_windows = [w for w in ladder if w < reference]
    windows = sorted({int(w) for w in attack_windows})
    if not windows:
        raise ParameterError("attack_windows must contain at least one value")
    if any(w < 1 for w in windows):
        raise ParameterError("attack windows must be >= 1")

    # One batched symmetric-grid solve covers the whole attack ladder.
    curve = game.global_payoff_curve([float(w) for w in windows])
    rows: List[MaliciousRow] = []
    for window, payoff in zip(windows, (float(v) for v in curve)):
        rows.append(
            MaliciousRow(
                attack_window=window,
                global_payoff=payoff,
                fraction_of_optimum=(
                    payoff / reference_payoff if reference_payoff > 0 else np.nan
                ),
                collapsed=payoff <= 0,
            )
        )
    return MaliciousResult(
        n_players=n_players,
        reference_window=reference,
        reference_payoff=reference_payoff,
        rows=rows,
    )


def collapse_demo(
    *,
    n_players: int = 50,
    cost: float = 0.05,
    mode: AccessMode = AccessMode.BASIC,
) -> MaliciousResult:
    """A configuration where the attack genuinely paralyses the network.

    With the paper's default energy cost (``e = 0.01``) exponential
    backoff keeps the residual success probability above break-even even
    at ``W = 1``, so the attack "only" destroys half the welfare.  In a
    crowded network with a higher per-attempt cost the stage payoff turns
    negative - the paper's "network is paralyzed" regime.  The defaults
    here (``n = 50``, ``e = 0.05``) put ``W = 1`` below break-even:
    ``(1 - p) g ~= 0.031 < e``.
    """
    params = default_parameters().with_updates(cost=cost)
    return run(params=params, n_players=n_players, mode=mode)
