"""Mobility dynamics of multi-hop TFT (extension of Section VI).

Plays the multi-hop game across random-waypoint epochs and contrasts the
paper's literal TFT rule (which never raises a window, so the historical
minimum is absorbing) with per-epoch re-opening at the current local
optimum (which tracks the topology).  See
:mod:`repro.multihop.dynamics` for the mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.experiments.reporting import format_table
from repro.multihop.dynamics import MobilityDynamics, MobilityTrace
from repro.phy.parameters import PhyParameters, default_parameters

__all__ = ["MobilityStudyResult", "run"]


@dataclass(frozen=True)
class MobilityStudyResult:
    """The per-epoch windows of both policies.

    Attributes
    ----------
    trace:
        The raw dynamics trace.
    ratchet_gap:
        Final gap between the re-opening window and the sticky window -
        how far the bare TFT rule has ratcheted below what the current
        topology calls for.
    """

    trace: MobilityTrace

    @property
    def ratchet_gap(self) -> int:
        last = self.trace.records[-1]
        return last.reopening_window - last.sticky_window

    def render(self) -> str:
        """Render epoch-by-epoch windows for both policies."""
        headers = [
            "epoch",
            "snapshot min W_i",
            "sticky TFT",
            "re-opening TFT",
            "mean degree",
        ]
        rows = [
            [
                record.epoch,
                record.snapshot_minimum,
                record.sticky_window,
                record.reopening_window,
                record.mean_degree,
            ]
            for record in self.trace.records
        ]
        table = format_table(
            headers,
            rows,
            title="Mobility dynamics: sticky vs re-opening TFT",
        )
        return (
            table
            + f"\nFinal ratchet gap (re-opening - sticky): "
            f"{self.ratchet_gap} windows"
        )


def run(
    *,
    params: Optional[PhyParameters] = None,
    n_nodes: int = 60,
    n_epochs: int = 6,
    epoch_seconds: float = 120.0,
    seed: int = 5,
) -> MobilityStudyResult:
    """Run the mobility study with the paper's scenario constants."""
    if params is None:
        params = default_parameters()
    dynamics = MobilityDynamics(
        params, n_nodes=n_nodes, rng=np.random.default_rng(seed)
    )
    trace = dynamics.run(n_epochs, epoch_seconds=epoch_seconds)
    return MobilityStudyResult(trace=trace)
