"""Section V.C - the distributed search for the efficient NE.

Runs the Start/Right/Left protocol from several starting points with two
payoff measurements:

* the analytic symmetric utility (noise-free: the protocol must land on
  the exact efficient window from any start);
* a simulator-backed measurement (each probe runs the DCF simulator for a
  finite measurement window ``t_m``, so payoffs are noisy and the found
  window scatters across the utility plateau - exactly the regime the
  paper's GTFT tolerance is designed for).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ParameterError
from repro.experiments.reporting import format_table
from repro.game.definition import MACGame
from repro.game.equilibrium import efficient_window
from repro.game.search import SearchOutcome, run_search_protocol
from repro.phy.parameters import AccessMode, PhyParameters, default_parameters
from repro.sim.engine import DcfSimulator

__all__ = ["SearchStudyResult", "SearchRun", "run", "simulator_measurement"]


def simulator_measurement(
    game: MACGame, *, slots_per_probe: int = 40_000, seed: int = 0
):
    """Build a simulator-backed payoff measurement for the protocol.

    Each probe simulates the whole network on the probed common window
    for ``slots_per_probe`` virtual slots and returns the initiator's
    (node 0) measured payoff - the paper's ``(n_s g - n_e e) / t_m``.
    """
    if slots_per_probe < 1:
        raise ParameterError(
            f"slots_per_probe must be >= 1, got {slots_per_probe!r}"
        )
    state = {"probe": 0}

    def measure(window: int) -> float:
        state["probe"] += 1
        simulator = DcfSimulator(
            [int(window)] * game.n_players,
            game.params,
            game.mode,
            seed=seed + state["probe"],
        )
        result = simulator.run(slots_per_probe)
        return float(result.payoff_rates[0])

    return measure


@dataclass(frozen=True)
class SearchRun:
    """One protocol run.

    Attributes
    ----------
    start_window:
        ``W_0`` of the run.
    found_window:
        The window the initiator broadcast.
    n_measurements:
        Payoff probes spent.
    exact:
        Whether the run used the noise-free analytic measurement.
    """

    start_window: int
    found_window: int
    n_measurements: int
    exact: bool


@dataclass(frozen=True)
class SearchStudyResult:
    """The Section V.C study."""

    n_players: int
    analytic_optimum: int
    runs: List[SearchRun]

    def render(self) -> str:
        """Render all runs against the analytic optimum."""
        headers = ["W_0", "found", "probes", "measurement"]
        rows = [
            [
                run_.start_window,
                run_.found_window,
                run_.n_measurements,
                "analytic" if run_.exact else "simulated",
            ]
            for run_ in self.runs
        ]
        return format_table(
            headers,
            rows,
            title=(
                "Section V.C: distributed search "
                f"(n={self.n_players}, analytic W_c*={self.analytic_optimum})"
            ),
        )


def run(
    *,
    params: Optional[PhyParameters] = None,
    n_players: int = 10,
    mode: AccessMode = AccessMode.BASIC,
    start_windows: Optional[Sequence[int]] = None,
    step: Optional[int] = None,
    with_simulation: bool = True,
    slots_per_probe: int = 40_000,
    seed: int = 0,
) -> SearchStudyResult:
    """Run the protocol from several starts, analytic and simulated."""
    if params is None:
        params = default_parameters()
    game = MACGame(n_players=n_players, params=params, mode=mode)
    optimum = efficient_window(n_players, params, game.times)
    if start_windows is None:
        start_windows = sorted(
            {
                max(params.cw_min, optimum // 4),
                max(params.cw_min, optimum - 10),
                optimum + 10,
                optimum * 2,
            }
        )
    if step is None:
        # One-window steps are the paper's protocol; scale up for distant
        # starting points to keep probe counts reasonable.
        step = max(1, optimum // 50)

    runs: List[SearchRun] = []
    for start in start_windows:
        outcome: SearchOutcome = run_search_protocol(
            game, int(start), step=step
        )
        runs.append(
            SearchRun(
                start_window=int(start),
                found_window=outcome.window,
                n_measurements=outcome.n_measurements,
                exact=True,
            )
        )
    if with_simulation:
        measure = simulator_measurement(
            game, slots_per_probe=slots_per_probe, seed=seed
        )
        for start in start_windows:
            outcome = run_search_protocol(
                game, int(start), measure=measure, step=step
            )
            runs.append(
                SearchRun(
                    start_window=int(start),
                    found_window=outcome.window,
                    n_measurements=outcome.n_measurements,
                    exact=False,
                )
            )
    return SearchStudyResult(
        n_players=n_players, analytic_optimum=optimum, runs=runs
    )
