"""Process-pool experiment runner with deterministic per-task seeding.

The headline sweeps (Tables II/III, Figures 2/3, the Section VII.B
snapshots) decompose into independent tasks.  This module runs such task
lists either serially or on a :class:`concurrent.futures.ProcessPoolExecutor`
with two invariants that make ``--jobs`` a pure speed knob:

* **Determinism.**  Task order is preserved and every stochastic task
  receives its own child of one root :class:`numpy.random.SeedSequence`
  *before* dispatch (:func:`spawn_seeds`), so results are bit-identical
  for a fixed root seed regardless of the worker count - the property
  ``tests/unit/test_parallel_runner.py`` pins.

* **Isolation.**  Child sequences are statistically independent streams
  (the SeedSequence spawning guarantee), so replicas never share random
  state even when they run in the same process.

Workers must be module-level callables (picklability); each experiment
module keeps its own private ``_task``-style worker next to its ``run``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar, Union

import numpy as np

from repro.backends import use_backend
from repro.errors import ParameterError
from repro.obs import (
    MemoryRecorder,
    current_span_id,
    enabled as _obs_enabled,
    get_recorder,
    span as _obs_span,
    use_recorder,
)
from repro.obs.metrics import gauge_set as _obs_gauge_set
from repro.obs.metrics import inc as _obs_inc

__all__ = ["parallel_map", "resolve_jobs", "spawn_seeds"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value to a concrete worker count.

    ``None`` and ``1`` mean serial execution; ``0`` means one worker per
    available CPU; any other positive integer is used as-is.
    """
    if jobs is None:
        return 1
    if jobs < 0:
        raise ParameterError(f"jobs must be >= 0, got {jobs!r}")
    if jobs == 0:
        return os.cpu_count() or 1
    return int(jobs)


def spawn_seeds(
    root: Union[int, np.random.SeedSequence], count: int
) -> List[np.random.SeedSequence]:
    """Spawn ``count`` independent child sequences from a root seed.

    The children are a pure function of the root entropy and the spawn
    index, so the same root always yields the same (independent) streams
    - the backbone of every experiment's reproducibility.
    """
    if count < 0:
        raise ParameterError(f"count must be >= 0, got {count!r}")
    sequence = (
        root
        if isinstance(root, np.random.SeedSequence)
        else np.random.SeedSequence(root)
    )
    return sequence.spawn(count)


@dataclass
class _WorkerBatch:
    """A task's return value plus the events its execution recorded."""

    value: Any
    events: List[Dict[str, Any]] = field(default_factory=list)


@dataclass
class _BackendCall:
    """Picklable wrapper pinning the compute backend around ``fn``.

    Worker processes do not share the parent's in-process backend
    override (:func:`repro.backends.set_default_backend`), so an
    explicit selection - a campaign spec's ``backend`` field, say - is
    carried inside the task callable and re-installed scoped around
    each task, in the worker for pool runs and in-process for serial
    runs.  The environment-variable default still propagates to workers
    on its own (children inherit ``os.environ``).
    """

    fn: Callable[[Any], Any]
    backend: str

    def __call__(self, task: Any) -> Any:
        with use_backend(self.backend):
            return self.fn(task)


@dataclass
class _RecordedCall:
    """Picklable wrapper running ``fn`` under a task-local recorder.

    Instrumentation state never crosses process boundaries, so each task
    records into a fresh :class:`MemoryRecorder` and ships the event
    batch back with its result through the normal ``pool.map`` channel
    (no extra queues or shared state).  The same wrapper runs on the
    serial path, so ``--jobs`` changes neither the recorded counters nor
    the span structure - only the timings.
    """

    fn: Callable[[Any], Any]

    def __call__(self, task: Any) -> "_WorkerBatch":
        recorder = MemoryRecorder()
        with use_recorder(recorder):
            value = self.fn(task)
        return _WorkerBatch(value=value, events=recorder.events)


def parallel_map(
    fn: Callable[[_T], _R],
    tasks: Sequence[_T],
    *,
    jobs: Optional[int] = None,
    on_result: Optional[Callable[[int, _T, _R], None]] = None,
    backend: Optional[str] = None,
) -> List[_R]:
    """Map ``fn`` over ``tasks``, optionally on a process pool.

    Parameters
    ----------
    fn:
        Module-level callable applied to each task (must be picklable
        when ``jobs`` implies more than one worker).
    tasks:
        The task list; results come back in the same order.
    jobs:
        Worker count as in :func:`resolve_jobs`.  The pool is capped at
        ``len(tasks)`` - there is no point spawning idle processes.
    backend:
        Compute-backend name pinned around every task (serial or in the
        worker process); ``None`` leaves each process's configured
        default in force.  Like ``jobs``, this is a pure speed knob -
        it never changes content digests.
    on_result:
        Optional ``callback(index, task, result)`` invoked **in the
        calling process**, in task order, as each result becomes
        available.  This is the commit hook the campaign engine uses to
        persist finished tasks immediately: if the sweep is interrupted
        (SIGINT, crash), everything already committed survives and a
        rerun resumes after it.

    Returns
    -------
    list
        ``[fn(task) for task in tasks]``, computed serially or in
        parallel but always in task order.

    Notes
    -----
    When a recorder is active (:func:`repro.obs.use_recorder`), each
    task runs under its own :class:`~repro.obs.MemoryRecorder` - in the
    worker process for pool runs, in-process for serial runs - and the
    event batches are merged back into the caller's recorder in task
    order.  The merged stream is therefore identical (up to timing
    values) for any worker count, which is what keeps run-profile
    digests byte-identical across ``--jobs`` settings.
    """
    task_list = list(tasks)
    workers = min(resolve_jobs(jobs), len(task_list))
    if backend is not None:
        fn = _BackendCall(fn, backend)
    if not _obs_enabled():
        return _plain_map(fn, task_list, workers, on_result)
    recorder = get_recorder()
    with _obs_span("parallel.map", tasks=len(task_list), jobs=workers):
        parent_id = current_span_id()
        results: List[_R] = []

        def consume(index: int, task: _T, batch: "_WorkerBatch") -> None:
            recorder.ingest(batch.events, parent_id=parent_id)
            _obs_inc("parallel.tasks", 1)
            _obs_gauge_set(
                "parallel.tasks_in_flight", len(task_list) - index - 1
            )
            if on_result is not None:
                on_result(index, task, batch.value)
            results.append(batch.value)

        wrapped = _RecordedCall(fn)
        if workers <= 1 or len(task_list) <= 1:
            for index, task in enumerate(task_list):
                consume(index, task, wrapped(task))
            return results
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for index, batch in enumerate(pool.map(wrapped, task_list)):
                consume(index, task_list[index], batch)
        return results


def _plain_map(
    fn: Callable[[_T], _R],
    task_list: List[_T],
    workers: int,
    on_result: Optional[Callable[[int, _T, _R], None]],
) -> List[_R]:
    """The uninstrumented fast path (no recorder installed)."""
    results: List[_R] = []
    if workers <= 1 or len(task_list) <= 1:
        for index, task in enumerate(task_list):
            value = fn(task)
            if on_result is not None:
                on_result(index, task, value)
            results.append(value)
        return results
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for index, value in enumerate(pool.map(fn, task_list)):
            if on_result is not None:
                on_result(index, task_list[index], value)
            results.append(value)
    return results
