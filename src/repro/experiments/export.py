"""JSON export of experiment results.

Every experiment returns a (frozen) dataclass tree built from Python
scalars, numpy arrays, dicts and lists.  This module serialises any such
result to JSON so downstream tooling (plotting, regression tracking,
CI dashboards) can consume the reproduction without importing the
library.
"""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from pathlib import Path
from typing import Any, Optional, Union

import numpy as np

from repro.errors import ParameterError

__all__ = ["result_to_dict", "to_json", "write_json"]


def result_to_dict(result: Any) -> Any:
    """Recursively convert an experiment result to plain JSON types.

    Handles dataclasses, numpy arrays/scalars, enums, mappings,
    sequences and scalars; mapping keys are stringified (JSON object
    keys must be strings).
    """
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return {
            field.name: result_to_dict(getattr(result, field.name))
            for field in dataclasses.fields(result)
        }
    if isinstance(result, Enum):
        return result.value
    if isinstance(result, np.ndarray):
        return [result_to_dict(item) for item in result.tolist()]
    if isinstance(result, (np.integer,)):
        return int(result)
    if isinstance(result, (np.floating,)):
        return float(result)
    if isinstance(result, (np.bool_,)):
        return bool(result)
    if isinstance(result, dict):
        return {
            str(key): result_to_dict(value) for key, value in result.items()
        }
    if isinstance(result, (list, tuple)):
        return [result_to_dict(item) for item in result]
    if isinstance(result, (str, int, float, bool)) or result is None:
        if isinstance(result, float) and not np.isfinite(result):
            return None
        return result
    if isinstance(result, range):
        return list(result)
    raise ParameterError(
        f"cannot serialise {type(result).__name__!r} to JSON"
    )


def to_json(result: Any, *, indent: Optional[int] = 2) -> str:
    """Serialise an experiment result to a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent)


def write_json(
    result: Any, path: Union[str, Path], *, indent: Optional[int] = 2
) -> Path:
    """Serialise an experiment result to a file; returns the path."""
    target = Path(path)
    target.write_text(to_json(result, indent=indent) + "\n")
    return target
