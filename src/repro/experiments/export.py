"""JSON export of experiment results.

Every experiment returns a (frozen) dataclass tree built from Python
scalars, numpy arrays, dicts and lists.  This module serialises any such
result to JSON so downstream tooling (plotting, regression tracking,
CI dashboards) can consume the reproduction without importing the
library.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from enum import Enum
from pathlib import Path
from typing import Any, Optional, Union

import numpy as np

from repro.errors import ParameterError

__all__ = ["result_to_dict", "to_json", "write_json"]


def result_to_dict(result: Any) -> Any:
    """Recursively convert an experiment result to plain JSON types.

    Handles dataclasses, numpy arrays/scalars, enums, mappings,
    sequences and scalars; mapping keys are stringified (JSON object
    keys must be strings).
    """
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return {
            field.name: result_to_dict(getattr(result, field.name))
            for field in dataclasses.fields(result)
        }
    if isinstance(result, Enum):
        return result.value
    if isinstance(result, np.ndarray):
        return [result_to_dict(item) for item in result.tolist()]
    if isinstance(result, (np.integer,)):
        return int(result)
    if isinstance(result, (np.floating,)):
        value = float(result)
        return value if np.isfinite(value) else None
    if isinstance(result, (np.bool_,)):
        return bool(result)
    if isinstance(result, dict):
        return {
            str(key): result_to_dict(value) for key, value in result.items()
        }
    if isinstance(result, (list, tuple)):
        return [result_to_dict(item) for item in result]
    if isinstance(result, (str, int, float, bool)) or result is None:
        if isinstance(result, float) and not np.isfinite(result):
            return None
        return result
    if isinstance(result, range):
        return list(result)
    raise ParameterError(
        f"cannot serialise {type(result).__name__!r} to JSON"
    )


def to_json(result: Any, *, indent: Optional[int] = 2) -> str:
    """Serialise an experiment result to a standards-compliant JSON string.

    Non-finite floats (``nan``, ``+/-inf``) are mapped to ``null`` by
    :func:`result_to_dict`; ``allow_nan=False`` then guarantees the output
    never contains the non-standard ``NaN``/``Infinity`` tokens that
    ``json.dumps`` would otherwise emit (and that strict parsers reject).
    """
    return json.dumps(result_to_dict(result), indent=indent, allow_nan=False)


def write_json(
    result: Any, path: Union[str, Path], *, indent: Optional[int] = 2
) -> Path:
    """Serialise an experiment result to a file atomically; returns the path.

    Missing parent directories are created, and the payload is written to
    a temporary file in the target directory then moved into place with
    :func:`os.replace` - so a reader (or a killed campaign) never observes
    a truncated JSON artefact at ``path``.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = to_json(result, indent=indent) + "\n"
    descriptor, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(payload)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already moved or gone
            pass
        raise
    return target
