"""TFT/GTFT convergence dynamics (Sections IV-V).

The paper argues that TFT makes heterogeneous initial windows converge to
the common minimum "within finite number of stages" and that GTFT's
tolerance absorbs measurement noise.  This experiment plays both out with
the repeated-game engine:

* TFT from scattered initial windows - converges to the minimum in one
  reaction stage, and stays;
* GTFT under bounded observation noise - stays put (tolerant) where TFT
  would chase every perturbation;
* a TFT population with one short-sighted deviator - the deviator's
  window floods the network in one reaction stage (the premise of
  Sections V.D/V.E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.experiments.reporting import format_table
from repro.game.definition import MACGame
from repro.game.repeated import GameTrace, RepeatedGameEngine
from repro.game.strategies import (
    GenerousTitForTat,
    ShortSightedStrategy,
    TitForTat,
)
from repro.phy.parameters import AccessMode, PhyParameters, default_parameters

__all__ = ["ConvergenceResult", "ConvergenceRun", "run"]


@dataclass(frozen=True)
class ConvergenceRun:
    """One convergence scenario.

    Attributes
    ----------
    label:
        Human-readable scenario name.
    initial_windows:
        The stage-0 profile.
    final_windows:
        The profile at the horizon.
    converged_at:
        First stage from which the profile stopped changing (None if it
        never settled within the horizon).
    common:
        Whether the final profile is a common window.
    """

    label: str
    initial_windows: List[int]
    final_windows: List[int]
    converged_at: Optional[int]
    common: bool


@dataclass(frozen=True)
class ConvergenceResult:
    """All convergence scenarios of the experiment."""

    runs: List[ConvergenceRun]

    def render(self) -> str:
        """Render one row per scenario."""
        headers = ["scenario", "initial", "final", "converged at", "common"]
        rows = [
            [
                r.label,
                str(r.initial_windows),
                str(r.final_windows),
                "-" if r.converged_at is None else r.converged_at,
                "yes" if r.common else "no",
            ]
            for r in self.runs
        ]
        return format_table(
            headers, rows, title="TFT/GTFT convergence dynamics"
        )


def _summarise(label: str, initial: Sequence[int], trace: GameTrace) -> ConvergenceRun:
    return ConvergenceRun(
        label=label,
        initial_windows=[int(w) for w in initial],
        final_windows=[int(w) for w in trace.final_windows],
        converged_at=trace.converged_at,
        common=trace.has_common_window(),
    )


def run(
    *,
    params: Optional[PhyParameters] = None,
    n_players: int = 5,
    mode: AccessMode = AccessMode.BASIC,
    n_stages: int = 12,
    seed: int = 5,
) -> ConvergenceResult:
    """Play the three convergence scenarios and summarise them."""
    if params is None:
        params = default_parameters()
    game = MACGame(n_players=n_players, params=params, mode=mode)
    rng = np.random.default_rng(seed)
    scattered = sorted(
        int(w) for w in rng.integers(40, 400, size=n_players)
    )

    runs: List[ConvergenceRun] = []

    tft_engine = RepeatedGameEngine(
        game, [TitForTat() for _ in range(n_players)], scattered
    )
    runs.append(
        _summarise("TFT, scattered start", scattered, tft_engine.run(n_stages))
    )

    common = [int(np.min(scattered))] * n_players
    gtft_engine = RepeatedGameEngine(
        game,
        [GenerousTitForTat(memory=3, tolerance=0.8) for _ in range(n_players)],
        common,
        observation_noise=5,
        rng=np.random.default_rng(seed + 1),
    )
    runs.append(
        _summarise(
            "GTFT, common start, noisy observation",
            common,
            gtft_engine.run(n_stages),
        )
    )

    deviant_window = max(params.cw_min, scattered[0] // 4)
    strategies = [ShortSightedStrategy(deviant_window)] + [
        TitForTat() for _ in range(n_players - 1)
    ]
    start = [scattered[0]] * n_players
    deviator_engine = RepeatedGameEngine(game, strategies, start)
    runs.append(
        _summarise(
            "TFT population + short-sighted deviator",
            start,
            deviator_engine.run(n_stages),
        )
    )
    return ConvergenceResult(runs=runs)
