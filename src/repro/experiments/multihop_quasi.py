"""Section VII.B - multi-hop quasi-optimality study.

The paper simulates 100 mobile nodes (250 m range, 1000 m x 1000 m area,
random waypoint at up to 5 m/s) under RTS/CTS, lets every node open with
its local efficient window, converges via TFT to the minimum (26 in their
run), and reports:

* each node keeps at least ~96% of the maximal local payoff it could get
  by varying its own CW;
* the global payoff is only ~3% below the maximal global payoff;
* both payoffs are nearly CW-independent for large ``n`` - the key
  approximation behind Section VI (``p_hn`` insensitive to CW values).

This module reproduces all three measurements on random-waypoint
snapshots, analytically (per-node local games) with an optional spatial-
simulator cross-check of the ``p_hn`` CW-independence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.experiments.parallel import parallel_map
from repro.experiments.reporting import format_table
from repro.multihop.game import MultihopGame, QuasiOptimalityReport
from repro.multihop.mobility import RandomWaypointModel
from repro.multihop.topology import GeometricTopology
from repro.phy.parameters import AccessMode, PhyParameters, default_parameters
from repro.sim.spatial import SpatialSimulator

__all__ = [
    "MultihopStudyResult",
    "SnapshotReport",
    "hidden_independence",
    "run",
    "spatial_quasi_optimality",
]


@dataclass(frozen=True)
class SnapshotReport:
    """Quasi-optimality metrics of one mobility snapshot.

    Attributes
    ----------
    converged_window:
        ``W_m`` of the snapshot.
    convergence_stages:
        TFT stages needed to flood ``W_m``.
    worst_node_fraction:
        Minimum per-node payoff retention at the NE.
    global_fraction:
        Global payoff at the NE over the sweep maximum.
    mean_degree:
        Average neighbour count (context for the local game sizes).
    """

    converged_window: int
    convergence_stages: int
    worst_node_fraction: float
    global_fraction: float
    mean_degree: float


@dataclass(frozen=True)
class MultihopStudyResult:
    """Aggregate of the Section VII.B study over several snapshots."""

    snapshots: List[SnapshotReport]

    @property
    def worst_node_fraction(self) -> float:
        """Worst per-node retention across all snapshots."""
        return min(s.worst_node_fraction for s in self.snapshots)

    @property
    def worst_global_fraction(self) -> float:
        """Worst global retention across all snapshots."""
        return min(s.global_fraction for s in self.snapshots)

    def render(self) -> str:
        """Render per-snapshot rows plus the aggregate claims."""
        headers = [
            "snapshot",
            "W_m",
            "TFT stages",
            "min node fraction",
            "global fraction",
            "mean degree",
        ]
        rows = [
            [
                index,
                s.converged_window,
                s.convergence_stages,
                s.worst_node_fraction,
                s.global_fraction,
                s.mean_degree,
            ]
            for index, s in enumerate(self.snapshots)
        ]
        table = format_table(
            headers, rows, title="Section VII.B: multi-hop quasi-optimality"
        )
        summary = (
            f"\nAggregate: min per-node retention "
            f"{self.worst_node_fraction:.3f} (paper: >= 0.96), "
            f"min global retention {self.worst_global_fraction:.3f} "
            f"(paper: >= 0.97)"
        )
        return table + summary


def _snapshot_task(task) -> SnapshotReport:
    """Worker: solve one mobility snapshot's multi-hop game (picklable)."""
    topology, params = task
    game = MultihopGame(topology, params, AccessMode.RTS_CTS)
    equilibrium = game.solve()
    quasi: QuasiOptimalityReport = game.quasi_optimality(equilibrium)
    return SnapshotReport(
        converged_window=equilibrium.converged_window,
        convergence_stages=equilibrium.convergence_stages,
        worst_node_fraction=quasi.worst_node_fraction,
        global_fraction=quasi.global_fraction,
        mean_degree=float(topology.degrees().mean()),
    )


def run(
    *,
    params: Optional[PhyParameters] = None,
    n_nodes: int = 100,
    tx_range: float = 250.0,
    width: float = 1000.0,
    height: float = 1000.0,
    max_speed: float = 5.0,
    n_snapshots: int = 3,
    snapshot_interval_s: float = 100.0,
    seed: int = 7,
    jobs: Optional[int] = None,
) -> MultihopStudyResult:
    """Run the Section VII.B study.

    Mobility advances between snapshots; each snapshot is solved as a
    static multi-hop game (local openings, TFT flood, quasi-optimality
    sweep).  Disconnected snapshots are fine: TFT floods per component
    and the analysis is per-node anyway.

    The mobility trace is generated serially (its RNG state advances
    between snapshots), then the per-snapshot games - the expensive part
    - are solved through the parallel runner; game solving is
    deterministic, so ``jobs`` cannot change the result.
    """
    if params is None:
        params = default_parameters()
    if n_snapshots < 1:
        raise ParameterError(f"n_snapshots must be >= 1, got {n_snapshots!r}")
    model = RandomWaypointModel(
        n_nodes,
        width=width,
        height=height,
        max_speed=max_speed,
        rng=np.random.default_rng(seed),
    )
    topologies = list(
        model.snapshots(
            tx_range, interval=snapshot_interval_s, count=n_snapshots
        )
    )
    reports: List[SnapshotReport] = parallel_map(
        _snapshot_task,
        [(topology, params) for topology in topologies],
        jobs=jobs,
    )
    return MultihopStudyResult(snapshots=reports)


def spatial_quasi_optimality(
    topology: GeometricTopology,
    converged_window: int,
    *,
    params: Optional[PhyParameters] = None,
    grid: Optional[Sequence[int]] = None,
    n_slots: int = 60_000,
    seed: int = 13,
) -> float:
    """Mechanistic check of the global quasi-optimality claim.

    Measures the network's *simulated* global payoff (spatial CSMA with
    real hidden terminals) at the converged window and across a common-
    window grid, and returns the ratio ``payoff(W_m) / max payoff`` -
    the quantity the paper reports as "only 3% less than the maximal
    global payoff".

    Simulation noise makes ratios slightly above 1 possible; callers
    should treat values near 1 as confirmation.
    """
    if params is None:
        params = default_parameters()
    if converged_window < 1:
        raise ParameterError(
            f"converged_window must be >= 1, got {converged_window!r}"
        )
    if grid is None:
        grid = sorted(
            {
                max(2, converged_window // 2),
                converged_window,
                converged_window * 2,
                converged_window * 4,
            }
        )
    if converged_window not in grid:
        raise ParameterError("grid must contain the converged window")

    payoffs = {}
    for window in grid:
        simulator = SpatialSimulator(
            topology.positions,
            topology.tx_range,
            [int(window)] * topology.n_nodes,
            params,
            AccessMode.RTS_CTS,
            seed=seed,
        )
        payoffs[window] = simulator.run(n_slots).global_payoff
    best = max(payoffs.values())
    if best <= 0:
        return 1.0
    return payoffs[converged_window] / best


def hidden_independence(
    topology: GeometricTopology,
    windows: Sequence[int],
    *,
    params: Optional[PhyParameters] = None,
    n_slots: int = 60_000,
    seed: int = 11,
) -> np.ndarray:
    """Measure ``1 - p_hn`` across common windows with the spatial sim.

    Returns the network-mean hidden degradation per window; the paper's
    key approximation predicts a nearly flat array for moderate-to-large
    windows.
    """
    if params is None:
        params = default_parameters()
    degradations = []
    for window in windows:
        simulator = SpatialSimulator(
            topology.positions,
            topology.tx_range,
            [int(window)] * topology.n_nodes,
            params,
            AccessMode.RTS_CTS,
            seed=seed,
        )
        result = simulator.run(n_slots)
        per_node = result.hidden_degradation()
        attempted = result.attempts > 0
        degradations.append(
            float(per_node[attempted].mean()) if attempted.any() else 0.0
        )
    return np.asarray(degradations)
