"""Mean-field equilibrium engine at population scale (perf study).

The exact heterogeneous Bianchi solver couples every node to every
other node: cost O(n) per instance, infeasible at ``n = 10^6``.  The
mean-field reduction (:mod:`repro.bianchi.meanfield`) observes that
nodes sharing a contention window are exchangeable, collapsing the
fixed point to the K *types* present - O(K) per instance, exact for
integer counts, not an approximation.  This experiment plays the claim
out in four acts:

* **agreement** - the mean-field solve matches the exact per-node
  solver to floating-point noise on populations small enough to expand;
* **scaling** - one K-type mixture solved at ``10^3 .. 10^6`` nodes,
  with the channel statistics (idle probability, throughput, expected
  slot) evaluated in O(K) alongside;
* **replicator** - the CW-type shares evolved under myopic ("stage")
  and TFT-enforced ("tft") fitness on the Table II population
  (``n = 20``): myopic play collapses to the most aggressive type,
  TFT enforcement lands inside the Theorem 2 NE family
  ``[W_c0, W_c*]``;
* **screening** - a synthetic population with a known selfish minority
  screened in one streaming pass (:mod:`repro.detect.screening`),
  reporting hits against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bianchi.batched import solve_heterogeneous_batch
from repro.bianchi.meanfield import (
    expand_types,
    mean_field_statistics,
    solve_mean_field,
)
from repro.detect.screening import screen_population, synthetic_population_tau
from repro.experiments.reporting import format_table
from repro.game.dynamics import converges_to_ne, run_replicator
from repro.game.equilibrium import analyze_equilibria
from repro.phy.parameters import AccessMode, PhyParameters, default_parameters
from repro.phy.timing import slot_times

__all__ = ["MeanFieldResult", "run"]

#: The K-type contention-window mixture of the scaling study.
_MIXTURE_WINDOWS: Tuple[float, ...] = (
    16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0,
)

#: Population shares of the mixture (sum to 1).
_MIXTURE_SHARES: Tuple[float, ...] = (
    0.30, 0.25, 0.15, 0.10, 0.08, 0.06, 0.04, 0.02,
)

#: The replicator strategy grid (contains W_c* = 335 for n = 20).
_REPLICATOR_GRID: Tuple[float, ...] = (16.0, 64.0, 335.0, 1024.0)


@dataclass(frozen=True)
class AgreementRow:
    """Mean-field vs exact solver on one expandable population."""

    population: int
    n_types: int
    max_tau_delta: float
    iterations: int
    newton: bool


@dataclass(frozen=True)
class ScalingRow:
    """One population size of the K-type mixture."""

    population: float
    n_types: int
    iterations: int
    p_idle: float
    throughput: float
    expected_slot_us: float


@dataclass(frozen=True)
class ReplicatorRow:
    """One fitness model's replicator outcome."""

    fitness_mode: str
    dominant_window: float
    steps: int
    converged: bool
    in_ne_family: bool


@dataclass(frozen=True)
class ScreeningRow:
    """One screening pass against ground truth."""

    population: int
    selfish_truth: int
    flagged: int
    true_positives: int
    false_positives: int
    slots: int


@dataclass(frozen=True)
class MeanFieldResult:
    """All four acts of the mean-field study."""

    agreement: List[AgreementRow]
    scaling: List[ScalingRow]
    replicator: List[ReplicatorRow]
    screening: List[ScreeningRow]
    ne_window_range: Tuple[int, int]

    def render(self) -> str:
        """Render the four tables."""
        blocks = []
        blocks.append(
            format_table(
                ["population", "types", "max |dtau|", "iters", "newton"],
                [
                    [
                        row.population,
                        row.n_types,
                        f"{row.max_tau_delta:.3e}",
                        row.iterations,
                        "yes" if row.newton else "no",
                    ]
                    for row in self.agreement
                ],
                title="Mean-field vs exact per-node solver (expandable n)",
            )
        )
        blocks.append(
            format_table(
                [
                    "population",
                    "types",
                    "iters",
                    "P(idle)",
                    "throughput",
                    "E[slot] us",
                ],
                [
                    [
                        f"{row.population:.0f}",
                        row.n_types,
                        row.iterations,
                        f"{row.p_idle:.4f}",
                        f"{row.throughput:.4f}",
                        f"{row.expected_slot_us:.1f}",
                    ]
                    for row in self.scaling
                ],
                title="K-type mixture solved at population scale (O(K))",
            )
        )
        lo, hi = self.ne_window_range
        blocks.append(
            format_table(
                ["fitness", "dominant W", "steps", "converged", "in NE family"],
                [
                    [
                        row.fitness_mode,
                        f"{row.dominant_window:.0f}",
                        row.steps,
                        "yes" if row.converged else "no",
                        "yes" if row.in_ne_family else "no",
                    ]
                    for row in self.replicator
                ],
                title=(
                    "Replicator dynamics, n = 20 "
                    f"(Theorem 2 NE family [{lo}, {hi}])"
                ),
            )
        )
        blocks.append(
            format_table(
                [
                    "population",
                    "selfish",
                    "flagged",
                    "true pos",
                    "false pos",
                    "slots",
                ],
                [
                    [
                        row.population,
                        row.selfish_truth,
                        row.flagged,
                        row.true_positives,
                        row.false_positives,
                        row.slots,
                    ]
                    for row in self.screening
                ],
                title="Population-scale misbehavior screening (one pass)",
            )
        )
        return "\n\n".join(blocks)


def _mixture_counts(population: float) -> List[float]:
    return [population * share for share in _MIXTURE_SHARES]


def run(
    *,
    params: Optional[PhyParameters] = None,
    mode: AccessMode = AccessMode.BASIC,
    agreement_populations: Sequence[int] = (8, 16, 32),
    scaling_populations: Sequence[float] = (1e3, 1e4, 1e5, 1e6),
    replicator_n: int = 20,
    replicator_steps: int = 2_000,
    screening_nodes: int = 50_000,
    screening_slots: int = 300_000,
    seed: int = 9,
) -> MeanFieldResult:
    """Run the four-act mean-field study."""
    if params is None:
        params = default_parameters()
    times = slot_times(params, mode)
    max_stage = params.max_backoff_stage

    agreement: List[AgreementRow] = []
    for n in agreement_populations:
        windows = list(_MIXTURE_WINDOWS[:4])
        base, extra = divmod(int(n), len(windows))
        counts = [
            float(base + (1 if k < extra else 0)) for k in range(len(windows))
        ]
        solution = solve_mean_field(windows, counts, max_stage)
        per_node = expand_types(windows, counts)
        exact = solve_heterogeneous_batch(per_node[None, :], max_stage)
        mean_field_per_node = np.repeat(
            solution.tau[0], np.asarray(counts, dtype=int)
        )
        agreement.append(
            AgreementRow(
                population=int(n),
                n_types=len(windows),
                max_tau_delta=float(
                    np.max(np.abs(mean_field_per_node - exact.tau[0]))
                ),
                iterations=int(solution.iterations[0]),
                newton=bool(solution.newton[0]),
            )
        )

    scaling: List[ScalingRow] = []
    for population in scaling_populations:
        counts = _mixture_counts(float(population))
        solution = solve_mean_field(
            list(_MIXTURE_WINDOWS), counts, max_stage
        )
        stats = mean_field_statistics(
            list(_MIXTURE_WINDOWS), counts, max_stage, params, times
        )
        scaling.append(
            ScalingRow(
                population=float(solution.population[0]),
                n_types=len(_MIXTURE_WINDOWS),
                iterations=int(solution.iterations[0]),
                p_idle=stats.p_idle,
                throughput=stats.throughput,
                expected_slot_us=stats.expected_slot_us,
            )
        )

    analysis = analyze_equilibria(replicator_n, params, times)
    replicator: List[ReplicatorRow] = []
    for fitness_mode in ("stage", "tft"):
        trajectory = run_replicator(
            np.asarray(_REPLICATOR_GRID),
            replicator_n,
            params,
            times,
            fitness_mode=fitness_mode,
            steps=replicator_steps,
        )
        replicator.append(
            ReplicatorRow(
                fitness_mode=fitness_mode,
                dominant_window=float(trajectory.dominant_window),
                steps=int(trajectory.iterations),
                converged=bool(trajectory.converged),
                in_ne_family=converges_to_ne(
                    trajectory, params, times, analysis=analysis
                ),
            )
        )

    reference_window = 1024.0
    tau0 = float(
        solve_mean_field(
            [reference_window], [float(screening_nodes)], max_stage
        ).tau[0][0]
    )
    tau = synthetic_population_tau(
        tau0,
        screening_nodes,
        selfish_fraction=0.01,
        selfish_boost=4.0,
        rng=seed,
    )
    screened = screen_population(
        tau,
        tau0,
        reference_window,
        max_stage,
        slots=screening_slots,
        chunk_slots=max(screening_slots // 10, 1),
        rng=seed + 1,
    )
    truth = tau > tau0
    screening = [
        ScreeningRow(
            population=screening_nodes,
            selfish_truth=int(truth.sum()),
            flagged=int(screened.flagged.sum()),
            true_positives=int((screened.flagged & truth).sum()),
            false_positives=int((screened.flagged & ~truth).sum()),
            slots=screening_slots,
        )
    ]

    return MeanFieldResult(
        agreement=agreement,
        scaling=scaling,
        replicator=replicator,
        screening=screening,
        ne_window_range=(
            int(analysis.window_breakeven),
            int(analysis.window_star),
        ),
    )
