"""Plain-text rendering of experiment results.

The paper reports tables and line plots; this module renders both as
fixed-width text so every experiment can print exactly the rows/series
the paper shows, with no plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

import numpy as np

from repro.errors import ParameterError

__all__ = ["format_series", "format_table"]

Cell = Union[str, int, float]


def _render_cell(value: Cell) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, (float, np.floating)):
        number = float(value)
        if number == 0:
            return "0"
        if abs(number) >= 1e4 or abs(number) < 1e-3:
            return f"{number:.4g}"
        return f"{number:.4g}"
    raise ParameterError(f"unsupported cell type: {type(value).__name__}")


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    *,
    title: str = "",
) -> str:
    """Render a fixed-width text table.

    Parameters
    ----------
    headers:
        Column labels.
    rows:
        Row cells; every row must match the header length.
    title:
        Optional title line above the table.

    Returns
    -------
    str
        The rendered table, newline-joined.
    """
    if not headers:
        raise ParameterError("headers must be non-empty")
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ParameterError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered))
        if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    x_label: str = "x",
    title: str = "",
) -> str:
    """Render one or more aligned series as a text table.

    This is the textual equivalent of the paper's line plots: one row per
    x value, one column per series.
    """
    x_arr = list(x)
    for name, values in series.items():
        if len(values) != len(x_arr):
            raise ParameterError(
                f"series {name!r} has {len(values)} points, expected "
                f"{len(x_arr)}"
            )
    headers = [x_label] + list(series.keys())
    rows = [
        [x_arr[i]] + [series[name][i] for name in series]
        for i in range(len(x_arr))
    ]
    return format_table(headers, rows, title=title)
