"""Table II - efficient NE, basic access.

For ``n in {5, 20, 50}`` the paper tabulates the analytical efficient NE
window ``W_c*``, the average per-node payoff-maximising window measured in
simulation (``W_c*``-bar) and its variance.  This module reproduces all
three columns: the analytic column through
:func:`repro.game.equilibrium.efficient_window`, the simulated columns
through :func:`repro.sim.adaptive.measure_per_node_optimum`.

Paper reference values (basic): 76 / 336 / 879 analytic, with simulated
means within ~1 window and variances of ~2.6-3.4.  Our analytic values
land within a few percent (78 / 335 / 848; the utility plateau around the
optimum is extremely flat - see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.parallel import parallel_map, spawn_seeds
from repro.experiments.reporting import format_table
from repro.game.equilibrium import efficient_window
from repro.phy.parameters import AccessMode, PhyParameters, default_parameters
from repro.phy.timing import slot_times
from repro.sim.adaptive import PerNodeOptimum, measure_per_node_optimum

__all__ = ["NERow", "NETableResult", "run"]

PAPER_BASIC: dict = {5: 76, 20: 336, 50: 879}


@dataclass(frozen=True)
class NERow:
    """One row of a Table II/III-style report.

    Attributes
    ----------
    n_nodes:
        Network size.
    analytic_window:
        ``W_c*`` from the model.
    simulated_mean:
        Mean of the per-node simulated optima (``W_c*``-bar).
    simulated_variance:
        Variance of the per-node simulated optima.
    paper_window:
        The value printed in the paper, when available (for
        EXPERIMENTS.md cross-reference).
    """

    n_nodes: int
    analytic_window: int
    simulated_mean: float
    simulated_variance: float
    paper_window: Optional[int]


@dataclass(frozen=True)
class NETableResult:
    """A full Table II/III reproduction."""

    mode: AccessMode
    rows: List[NERow]

    def render(self) -> str:
        """Render in the paper's layout."""
        title = (
            "Table II: Nash equilibrium point, basic case"
            if self.mode is AccessMode.BASIC
            else "Table III: Nash equilibrium point, RTS/CTS case"
        )
        headers = ["n", "Wc* (analytic)", "Wc*-bar (sim)", "Var(Wc*)", "paper"]
        rows = [
            [
                row.n_nodes,
                row.analytic_window,
                row.simulated_mean,
                row.simulated_variance,
                "-" if row.paper_window is None else row.paper_window,
            ]
            for row in self.rows
        ]
        return format_table(headers, rows, title=title)


def _measure_task(task) -> PerNodeOptimum:
    """Worker: one network size's per-node-optimum sweep (picklable)."""
    n_nodes, params, mode, slots_per_point, child_seed, engine = task
    return measure_per_node_optimum(
        n_nodes,
        params,
        mode,
        slots_per_point=slots_per_point,
        seed=child_seed,
        engine=engine,
    )


def run_mode(
    mode: AccessMode,
    *,
    params: Optional[PhyParameters] = None,
    sizes: Sequence[int] = (5, 20, 50),
    slots_per_point: int = 150_000,
    seed: int = 0,
    paper_values: Optional[dict] = None,
    jobs: Optional[int] = None,
    engine: str = "vectorized",
) -> NETableResult:
    """Reproduce a Table II/III-style NE table for one access mode.

    Each network size is one task of the parallel runner; per-size child
    seeds are spawned from ``seed`` before dispatch, so the table is
    bit-identical for a fixed seed regardless of ``jobs``.
    """
    if params is None:
        params = default_parameters()
    times = slot_times(params, mode)
    children = spawn_seeds(seed, len(sizes))
    tasks = [
        (n_nodes, params, mode, slots_per_point, child, engine)
        for n_nodes, child in zip(sizes, children)
    ]
    measurements = parallel_map(_measure_task, tasks, jobs=jobs)
    rows = []
    for n_nodes, measured in zip(sizes, measurements):
        analytic = efficient_window(n_nodes, params, times)
        paper = None if paper_values is None else paper_values.get(n_nodes)
        rows.append(
            NERow(
                n_nodes=n_nodes,
                analytic_window=analytic,
                simulated_mean=measured.mean,
                simulated_variance=measured.variance,
                paper_window=paper,
            )
        )
    return NETableResult(mode=mode, rows=rows)


def run(
    *,
    params: Optional[PhyParameters] = None,
    sizes: Sequence[int] = (5, 20, 50),
    slots_per_point: int = 150_000,
    seed: int = 0,
    jobs: Optional[int] = None,
    engine: str = "vectorized",
) -> NETableResult:
    """Reproduce Table II (basic access)."""
    return run_mode(
        AccessMode.BASIC,
        params=params,
        sizes=sizes,
        slots_per_point=slots_per_point,
        seed=seed,
        paper_values=PAPER_BASIC,
        jobs=jobs,
        engine=engine,
    )
