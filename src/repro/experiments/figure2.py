"""Figure 2 - global payoff versus common CW, basic access.

The paper plots ``U / C`` against the common contention window, where
``U`` is the global (discounted) payoff and ``C = g T / (sigma (1 -
delta))`` a normalising constant.  With ``U = n u_i T / (1 - delta)``
(every player on the same window after convergence), the normalised
quantity reduces to::

    U / C = n * u_i(W) * sigma / g

- dimensionless and independent of the stage length and discount.  The
curve is unimodal with its maximum at ``W_c*`` and is strikingly flat
around it, the robustness the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.experiments.parallel import parallel_map
from repro.experiments.reporting import format_series
from repro.game.definition import MACGame
from repro.game.equilibrium import efficient_window
from repro.phy.parameters import AccessMode, PhyParameters, default_parameters
from repro.phy.timing import slot_times

__all__ = ["GlobalPayoffCurves", "run", "run_mode"]


@dataclass(frozen=True)
class GlobalPayoffCurves:
    """Normalised global payoff curves for several network sizes.

    Attributes
    ----------
    mode:
        Access mode of the sweep.
    windows:
        The common-window grid (shared by all curves).
    curves:
        Mapping ``n`` -> normalised global payoff ``U/C`` per window.
    optima:
        Mapping ``n`` -> the analytic efficient window ``W_c*``.
    """

    mode: AccessMode
    windows: np.ndarray
    curves: Dict[int, np.ndarray]
    optima: Dict[int, int]

    def peak_window(self, n_nodes: int) -> int:
        """Grid window with the maximal payoff for one curve."""
        curve = self.curves[n_nodes]
        return int(self.windows[int(np.argmax(curve))])

    def render(self) -> str:
        """Render the curves as an ASCII chart plus the aligned series."""
        from repro.experiments.plotting import ascii_plot

        label = "basic" if self.mode is AccessMode.BASIC else "RTS/CTS"
        series = {
            f"U/C (n={n})": curve.tolist() for n, curve in self.curves.items()
        }
        chart = ascii_plot(
            self.windows.tolist(),
            series,
            x_label="W (grid rank)",
            title=f"Global payoff versus CW value, {label} case",
        )
        table = format_series(
            self.windows.tolist(),
            series,
            x_label="W",
        )
        return chart + "\n\n" + table


def _log_grid(lo: int, hi: int, n_points: int) -> np.ndarray:
    if lo < 1 or hi <= lo:
        raise ParameterError(f"invalid grid bounds [{lo}, {hi}]")
    grid = np.unique(
        np.round(np.geomspace(lo, hi, n_points)).astype(int)
    )
    return grid


_CHUNK_WINDOWS = 16


def _curve_chunk_task(task) -> np.ndarray:
    """Worker: global payoffs of one window chunk for one size (picklable).

    Each chunk is one batched symmetric-grid solve
    (:meth:`MACGame.global_payoff_curve`), so the per-window cost is a
    few array operations rather than a scalar fixed-point iteration.
    """
    n_nodes, params, mode, chunk = task
    game = MACGame(n_players=n_nodes, params=params, mode=mode)
    return game.global_payoff_curve([float(w) for w in chunk])


def run_mode(
    mode: AccessMode,
    *,
    params: Optional[PhyParameters] = None,
    sizes: Sequence[int] = (5, 20, 50),
    n_points: int = 40,
    grid: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
) -> GlobalPayoffCurves:
    """Sweep the normalised global payoff for one access mode.

    The default grid is geometric from 2 to ~4x the largest ``W_c*`` so
    every curve's rise, peak and decay are visible, with each curve's own
    ``W_c*`` spliced in.  The sweep is a pure function of its arguments,
    so parallel evaluation (``jobs``) cannot change the curves; tasks are
    fixed-size window chunks per network size.
    """
    if params is None:
        params = default_parameters()
    times = slot_times(params, mode)
    optima = {
        n: efficient_window(n, params, times) for n in sizes
    }
    if grid is None:
        hi = max(optima.values()) * 4
        grid_arr = _log_grid(2, int(hi), n_points)
        grid_arr = np.unique(
            np.concatenate([grid_arr, np.asarray(list(optima.values()))])
        )
    else:
        grid_arr = np.unique(np.asarray([int(w) for w in grid]))
        if np.any(grid_arr < 1):
            raise ParameterError("grid windows must be >= 1")

    tasks = [
        (n_nodes, params, mode, grid_arr[start : start + _CHUNK_WINDOWS])
        for n_nodes in sizes
        for start in range(0, grid_arr.size, _CHUNK_WINDOWS)
    ]
    chunk_values = parallel_map(_curve_chunk_task, tasks, jobs=jobs)
    chunks_per_size = -(-grid_arr.size // _CHUNK_WINDOWS)

    curves: Dict[int, np.ndarray] = {}
    for index, n_nodes in enumerate(sizes):
        values = np.concatenate(
            chunk_values[index * chunks_per_size : (index + 1) * chunks_per_size]
        )
        # Normalise: U/C = n u_i sigma / g  (u summed over players already).
        curves[n_nodes] = values * times.idle_us / params.gain

    return GlobalPayoffCurves(
        mode=mode, windows=grid_arr, curves=curves, optima=optima
    )


def run(
    *,
    params: Optional[PhyParameters] = None,
    sizes: Sequence[int] = (5, 20, 50),
    n_points: int = 40,
    jobs: Optional[int] = None,
) -> GlobalPayoffCurves:
    """Reproduce Figure 2 (basic access)."""
    return run_mode(
        AccessMode.BASIC,
        params=params,
        sizes=sizes,
        n_points=n_points,
        jobs=jobs,
    )
