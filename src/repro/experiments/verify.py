"""Machine-checked certification of the paper's equilibrium claims.

Runs the :mod:`repro.verify` certification stack - the Bianchi
fixed-point uniqueness, Lemma 3 stationarity, the Theorem 2 NE window
family and the Theorem 3 multi-hop drag-down - over one parameter box
and reports per-claim verdicts.

The default checkers are ``interval`` (outward-rounded subdivision
proofs) and ``numeric`` (the production solver stack at the box
vertices): both are deterministic and dependency-free, so the
experiment runs - and caches - identically on every machine.  Pass
``checkers=("interval", "smt", "numeric")`` to add z3
violation-existence queries when the ``verify`` extra is installed;
without z3 the SMT outcomes degrade to ``skipped`` (never an error).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.experiments.reporting import format_table
from repro.verify.boxes import get_box
from repro.verify.certify import run_certification
from repro.verify.claims import CheckBudget

__all__ = ["VerifyResult", "VerifyRow", "run"]


@dataclass(frozen=True)
class VerifyRow:
    """One claim's certification verdict over the box."""

    claim: str
    status: str
    boxes_proved: int
    unknowns: int
    violations: int
    vertices_checked: int
    vertices_ok: int


@dataclass(frozen=True)
class VerifyResult:
    """Certification summary over one parameter box."""

    box: str
    checkers: Tuple[str, ...]
    rows: List[VerifyRow]
    all_certified: bool

    def render(self) -> str:
        table = format_table(
            [
                "claim",
                "status",
                "sub-boxes",
                "unknown",
                "violated",
                "vertices",
            ],
            [
                [
                    row.claim,
                    row.status,
                    row.boxes_proved,
                    row.unknowns,
                    row.violations,
                    f"{row.vertices_ok}/{row.vertices_checked}",
                ]
                for row in self.rows
            ],
            title=(
                f"Certification over box {self.box!r} "
                f"(checkers: {', '.join(self.checkers)})"
            ),
        )
        verdict = (
            "every claim certified over the whole box"
            if self.all_certified
            else "NOT fully certified - inspect the per-claim outcomes"
        )
        return f"{table}\n{verdict}"


def run(
    box: str = "tableII-small",
    theorems: Sequence[str] = ("all",),
    checkers: Sequence[str] = ("interval", "numeric"),
    max_boxes: int = 20000,
) -> VerifyResult:
    """Certify the selected theorems over one built-in box.

    Parameters
    ----------
    box:
        Built-in box name (see :data:`repro.verify.boxes.BOX_NAMES`).
    theorems:
        Claim names or ``("all",)``.
    checkers:
        Checker subset; the default omits ``smt`` so the artefact is
        identical with and without the optional z3 dependency.
    max_boxes:
        Interval-subdivision budget per check.
    """
    parameter_box = get_box(box)
    budget = CheckBudget(max_boxes=max_boxes)
    certificates = run_certification(
        theorems, parameter_box, checkers=tuple(checkers), budget=budget
    )
    rows = []
    for certificate in certificates:
        interval_outcomes = [
            outcome
            for outcome in certificate.outcomes
            if outcome.checker == "interval"
        ]
        rows.append(
            VerifyRow(
                claim=certificate.claim,
                status=certificate.status,
                boxes_proved=int(
                    sum(
                        outcome.stats.get("boxes_proved", 0.0)
                        for outcome in interval_outcomes
                    )
                ),
                unknowns=sum(
                    1
                    for outcome in certificate.outcomes
                    if outcome.verdict == "unknown"
                ),
                violations=sum(
                    1
                    for outcome in certificate.outcomes
                    if outcome.verdict == "violated"
                ),
                vertices_checked=len(certificate.vertices),
                vertices_ok=sum(
                    1 for vertex in certificate.vertices if vertex.ok
                ),
            )
        )
    return VerifyResult(
        box=box,
        checkers=tuple(checkers),
        rows=rows,
        all_certified=all(row.status == "certified" for row in rows),
    )
