"""Section V.D - impact of short-sighted players.

Reproduces the paper's three findings:

* an extremely short-sighted deviator (``delta_s -> 0``) profits from
  undercutting ``W_c*``;
* a long-sighted deviator's optimal window is ``W_c*`` itself;
* once TFT drags everyone to the deviator's window, every stage payoff
  (including the deviator's) is below the efficient NE - the network is
  degraded, and collapses for very aggressive windows.

The experiment sweeps the deviator's discount factor, reporting the
optimal deviation window, the deviation gain and the induced network
degradation at each point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ParameterError
from repro.experiments.reporting import format_table
from repro.game.definition import MACGame
from repro.game.deviation import DeviationAnalysis, deviation_table
from repro.game.equilibrium import efficient_window
from repro.phy.parameters import AccessMode, PhyParameters, default_parameters

__all__ = ["ShortSightedResult", "ShortSightedRow", "run"]


@dataclass(frozen=True)
class ShortSightedRow:
    """One discount-factor point of the study.

    Attributes
    ----------
    discount:
        The deviator's ``delta_s``.
    best_window:
        Its payoff-maximising deviation window ``W_s``.
    gain:
        Discounted gain over conforming (positive = deviation pays).
    degradation:
        Per-stage network degradation after convergence to ``W_s``
        (0 when the deviator stays at ``W_c*``).
    """

    discount: float
    best_window: int
    gain: float
    degradation: float


@dataclass(frozen=True)
class ShortSightedResult:
    """The Section V.D sweep."""

    n_players: int
    reference_window: int
    reaction_stages: int
    rows: List[ShortSightedRow]

    def render(self) -> str:
        """Render the sweep as a text table."""
        headers = ["delta_s", "best W_s", "gain", "network degradation"]
        rows = [
            [row.discount, row.best_window, row.gain, row.degradation]
            for row in self.rows
        ]
        return format_table(
            headers,
            rows,
            title=(
                "Section V.D: short-sighted deviation from "
                f"W_c*={self.reference_window} "
                f"(n={self.n_players}, reaction={self.reaction_stages})"
            ),
        )


def run(
    *,
    params: Optional[PhyParameters] = None,
    n_players: int = 10,
    mode: AccessMode = AccessMode.BASIC,
    discounts: Sequence[float] = (0.01, 0.3, 0.6, 0.9, 0.99, 0.9999),
    reaction_stages: int = 1,
) -> ShortSightedResult:
    """Run the short-sighted sweep over deviator discount factors."""
    if params is None:
        params = default_parameters()
    if not discounts:
        raise ParameterError("discounts must be non-empty")
    game = MACGame(n_players=n_players, params=params, mode=mode)
    reference = efficient_window(n_players, params, game.times)

    # The candidate scan's stage payoffs are discount-independent, so one
    # batched solve supports the whole sweep; each discount only re-ranks
    # the table.
    table = deviation_table(
        game,
        reaction_stages=reaction_stages,
        reference_window=reference,
    )
    rows: List[ShortSightedRow] = []
    for discount in discounts:
        best: DeviationAnalysis = table.best(discount)
        rows.append(
            ShortSightedRow(
                discount=discount,
                best_window=best.deviation_window,
                gain=best.gain,
                degradation=best.network_degradation,
            )
        )
    return ShortSightedResult(
        n_players=n_players,
        reference_window=reference,
        reaction_stages=reaction_stages,
        rows=rows,
    )
