"""Table III - efficient NE, RTS/CTS access.

Same measurement as :mod:`repro.experiments.table2` under the RTS/CTS
access mechanism.  Paper reference values: 22 / 48 / 116.  Our model
reproduces ``n = 20`` exactly and ``n = 50`` within a few windows; at
``n = 5`` the RTS/CTS utility plateau is so flat (the paper itself notes
the robustness of the NE) that the discrete optimum is weakly pinned -
see EXPERIMENTS.md for the sensitivity analysis.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.table2 import NETableResult, run_mode
from repro.phy.parameters import AccessMode, PhyParameters

__all__ = ["PAPER_RTS", "run"]

PAPER_RTS: dict = {5: 22, 20: 48, 50: 116}


def run(
    *,
    params: Optional[PhyParameters] = None,
    sizes: Sequence[int] = (5, 20, 50),
    slots_per_point: int = 150_000,
    seed: int = 0,
    jobs: Optional[int] = None,
    engine: str = "vectorized",
) -> NETableResult:
    """Reproduce Table III (RTS/CTS access)."""
    return run_mode(
        AccessMode.RTS_CTS,
        params=params,
        sizes=sizes,
        slots_per_point=slots_per_point,
        seed=seed,
        paper_values=PAPER_RTS,
        jobs=jobs,
        engine=engine,
    )
