"""Table I - network parameters.

Not a computation, but the anchor of every other experiment: this module
renders the parameter set all reproductions run with, in the layout of the
paper's Table I, plus the derived slot times the analysis depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.reporting import format_table
from repro.phy.parameters import AccessMode, PhyParameters, default_parameters
from repro.phy.timing import slot_times

__all__ = ["Table1Result", "run"]


@dataclass(frozen=True)
class Table1Result:
    """The rendered parameter set and derived timings.

    Attributes
    ----------
    parameters:
        Label -> value strings, in the paper's Table I order.
    derived:
        Derived slot times (``Ts``/``Tc`` per access mode) in
        microseconds.
    """

    parameters: Dict[str, str]
    derived: Dict[str, float]

    def render(self) -> str:
        """Render both tables as text."""
        param_rows = [[k, v] for k, v in self.parameters.items()]
        derived_rows = [[k, v] for k, v in self.derived.items()]
        return "\n\n".join(
            [
                format_table(
                    ["Parameter", "Value"],
                    param_rows,
                    title="Table I: network parameters",
                ),
                format_table(
                    ["Derived time", "Microseconds"],
                    derived_rows,
                    title="Derived slot occupancy times",
                ),
            ]
        )


def run(params: PhyParameters = None) -> Table1Result:
    """Build the Table I report for a parameter set (paper defaults)."""
    if params is None:
        params = default_parameters()
    basic = slot_times(params, AccessMode.BASIC)
    rts = slot_times(params, AccessMode.RTS_CTS)
    derived = {
        "Ts (basic)": basic.success_us,
        "Tc (basic)": basic.collision_us,
        "Ts' (RTS/CTS)": rts.success_us,
        "Tc' (RTS/CTS)": rts.collision_us,
        "sigma": basic.idle_us,
    }
    return Table1Result(parameters=params.as_table(), derived=derived)
