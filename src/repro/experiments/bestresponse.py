"""Myopic best-response dynamics - the Section VIII reconciliation.

The paper's Discussion reconciles its optimistic result with
[Cagalj et al. 2005]'s pessimistic one: *their* selfish nodes are
short-sighted stage-optimisers, which is a different game.  This
experiment plays that game: every node best-responds to the previous
stage profile, maximising only its next stage payoff.

Lemma 4 makes the outcome inevitable - against any common window, the
stage best response is to undercut - so best-response dynamics race to
the bottom of the strategy space and the welfare collapses, exactly
[Cagalj et al.]'s conclusion.  Run next to the TFT dynamics (same
initial profile, same model) the contrast isolates the paper's thesis:
it is *far-sightedness + TFT*, not selfishness per se, that rescues the
network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.experiments.reporting import format_table
from repro.game.definition import MACGame
from repro.game.equilibrium import efficient_window
from repro.game.repeated import RepeatedGameEngine
from repro.game.strategies import BestResponseStrategy, TitForTat
from repro.phy.parameters import AccessMode, PhyParameters, default_parameters

__all__ = ["BestResponseResult", "run"]


@dataclass(frozen=True)
class BestResponseResult:
    """Side-by-side dynamics of myopic vs TFT populations.

    Attributes
    ----------
    initial_window:
        The common starting window (the efficient NE).
    myopic_windows:
        Stage-by-stage mean window of the best-response population.
    myopic_welfare:
        Stage-by-stage welfare of the best-response population.
    tft_welfare:
        Stage-by-stage welfare of the TFT population (flat, for
        contrast).
    """

    initial_window: int
    myopic_windows: List[float]
    myopic_welfare: List[float]
    tft_welfare: List[float]

    @property
    def welfare_loss(self) -> float:
        """Final myopic welfare relative to the TFT population's."""
        return 1.0 - self.myopic_welfare[-1] / self.tft_welfare[-1]

    def render(self) -> str:
        """Render the two trajectories stage by stage."""
        headers = [
            "stage",
            "myopic mean W",
            "myopic welfare",
            "TFT welfare",
        ]
        rows = [
            [
                stage,
                self.myopic_windows[stage],
                self.myopic_welfare[stage],
                self.tft_welfare[stage],
            ]
            for stage in range(len(self.myopic_windows))
        ]
        table = format_table(
            headers,
            rows,
            title=(
                "Section VIII: myopic best response vs TFT from "
                f"W_c*={self.initial_window}"
            ),
        )
        return (
            table
            + f"\nFinal myopic welfare loss vs TFT: "
            f"{100 * self.welfare_loss:.1f}%"
        )


def run(
    *,
    params: Optional[PhyParameters] = None,
    n_players: int = 6,
    mode: AccessMode = AccessMode.BASIC,
    n_stages: int = 6,
) -> BestResponseResult:
    """Play both populations from the efficient NE and compare.

    The per-stage best-response scans run as batched fixed-point solves
    (one ``(B, n)`` call per deciding player, via
    :meth:`MACGame.stage_batch`), so the dynamics cost a handful of array
    iterations per stage instead of a scalar solve per candidate window.
    """
    if params is None:
        params = default_parameters()
    game = MACGame(n_players=n_players, params=params, mode=mode)
    star = efficient_window(n_players, params, game.times)
    start = [star] * n_players

    myopic = RepeatedGameEngine(
        game,
        [BestResponseStrategy() for _ in range(n_players)],
        start,
    ).run(n_stages)
    tft = RepeatedGameEngine(
        game, [TitForTat() for _ in range(n_players)], start
    ).run(n_stages)

    return BestResponseResult(
        initial_window=star,
        myopic_windows=[
            float(np.mean(record.windows)) for record in myopic.records
        ],
        myopic_welfare=[
            float(record.stage_payoffs.sum()) for record in myopic.records
        ],
        tft_welfare=[
            float(record.stage_payoffs.sum()) for record in tft.records
        ],
    )
