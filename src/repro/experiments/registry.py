"""Experiment registry: one entry per reproduced table/figure/study.

Maps stable experiment ids (the ones DESIGN.md and EXPERIMENTS.md use) to
their runner callables, so tooling - the benchmarks, the examples, a
command line - can enumerate and run everything uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

from repro.errors import ParameterError
from repro.obs import span as _obs_span
from repro.experiments import (
    bestresponse,
    convergence,
    figure2,
    figure3,
    malicious,
    meanfield,
    mobility_dynamics,
    multihop_quasi,
    search_protocol,
    shortsighted,
    table1,
    table2,
    table3,
    verify,
)

__all__ = ["EXPERIMENTS", "Experiment", "get_experiment", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """A registered experiment.

    Attributes
    ----------
    experiment_id:
        Stable identifier (matches DESIGN.md's experiment index).
    paper_artifact:
        The paper table/figure/section the experiment reproduces.
    description:
        One-line summary.
    runner:
        Zero-required-argument callable returning a result object with a
        ``render()`` method.
    supports_jobs:
        Whether the runner accepts the parallel runner's ``jobs``
        keyword (the sweep experiments).  Tooling - the CLI, the
        campaign engine - uses this instead of hard-coding id lists.
    """

    experiment_id: str
    paper_artifact: str
    description: str
    runner: Callable[..., Any]
    supports_jobs: bool = False

    def run(self, **kwargs: Any) -> Any:
        """Run the experiment, forwarding keyword overrides."""
        with _obs_span("experiment", experiment_id=self.experiment_id):
            return self.runner(**kwargs)


EXPERIMENTS: Dict[str, Experiment] = {
    experiment.experiment_id: experiment
    for experiment in (
        Experiment(
            "table1",
            "Table I",
            "Network parameters and derived slot times",
            table1.run,
        ),
        Experiment(
            "table2",
            "Table II",
            "Efficient NE windows, basic access (analytic vs simulated)",
            table2.run,
            supports_jobs=True,
        ),
        Experiment(
            "table3",
            "Table III",
            "Efficient NE windows, RTS/CTS access (analytic vs simulated)",
            table3.run,
            supports_jobs=True,
        ),
        Experiment(
            "fig2",
            "Figure 2",
            "Global payoff versus common CW, basic access",
            figure2.run,
            supports_jobs=True,
        ),
        Experiment(
            "fig3",
            "Figure 3",
            "Global payoff versus common CW, RTS/CTS access",
            figure3.run,
            supports_jobs=True,
        ),
        Experiment(
            "multihop",
            "Section VII.B",
            "Multi-hop quasi-optimality on random-waypoint snapshots",
            multihop_quasi.run,
            supports_jobs=True,
        ),
        Experiment(
            "shortsighted",
            "Section V.D",
            "Short-sighted deviator payoffs and network degradation",
            shortsighted.run,
        ),
        Experiment(
            "malicious",
            "Section V.E",
            "Malicious player dragging the network to collapse",
            malicious.run,
        ),
        Experiment(
            "search",
            "Section V.C",
            "Distributed search protocol for the efficient NE",
            search_protocol.run,
        ),
        Experiment(
            "convergence",
            "Sections IV-V",
            "TFT/GTFT convergence dynamics",
            convergence.run,
        ),
        Experiment(
            "bestresponse",
            "Section VIII",
            "Myopic best-response collapse vs TFT (Cagalj et al. "
            "reconciliation)",
            bestresponse.run,
        ),
        Experiment(
            "meanfield",
            "Sections III-V (scale)",
            "Mean-field engine: exact agreement, 10^6-node scaling, "
            "replicator NE convergence, screening",
            meanfield.run,
        ),
        Experiment(
            "verify",
            "Lemma 3, Thms 2-3",
            "Machine-checked certification of the equilibrium claims "
            "over a parameter box",
            verify.run,
        ),
        Experiment(
            "mobility",
            "Section VI (extension)",
            "Sticky vs re-opening TFT across mobility epochs",
            mobility_dynamics.run,
        ),
    )
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up a registered experiment by id."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ParameterError(
            f"unknown experiment {experiment_id!r}; known ids: {known}"
        ) from None


def run_experiment(experiment_id: str, **kwargs: Any) -> Any:
    """Run a registered experiment by id, forwarding overrides."""
    return get_experiment(experiment_id).run(**kwargs)
