"""Deterministic random-generator resolution.

Reproducibility is a headline guarantee of this repository (PR 1 made
every experiment bit-identical for any ``--jobs``), so no code path may
silently fall back to an OS-entropy generator.  The custom lints
``REPRO001``/``REPRO002`` (see :mod:`repro.lint`) forbid unseeded
``np.random.default_rng()`` construction; this module provides the one
sanctioned way to accept "a generator, a seed, or nothing" and still end
up deterministic: callers declare an explicit module default seed that
is used when the caller supplied nothing.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["DEFAULT_SEED", "RngLike", "resolve_rng"]

RngLike = Union[
    None, int, np.random.SeedSequence, np.random.Generator, np.random.BitGenerator
]

#: Repository-wide fallback seed (the paper's publication date).  Modules
#: may pass their own ``default_seed`` to decorrelate their streams.
DEFAULT_SEED = 20070625


def resolve_rng(
    rng: RngLike, *, default_seed: Optional[int] = None
) -> np.random.Generator:
    """Coerce ``rng`` into a deterministically seeded generator.

    Parameters
    ----------
    rng:
        ``None``, an integer seed, a :class:`numpy.random.SeedSequence`,
        a :class:`numpy.random.BitGenerator` or a ready
        :class:`numpy.random.Generator`.  Generators pass through
        untouched so callers can share one stream across components.
    default_seed:
        Seed used when ``rng`` is ``None``.  Defaults to
        :data:`DEFAULT_SEED`; pass a module-specific constant to keep
        independent subsystems on decorrelated streams.

    Returns
    -------
    numpy.random.Generator
        A generator whose stream is a pure function of the inputs -
        never of OS entropy.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        seed = DEFAULT_SEED if default_seed is None else default_seed
        return np.random.default_rng(seed)
    return np.random.default_rng(rng)
