"""Counters and estimators for simulator runs.

The simulator counts events; this module turns the raw counters into the
quantities the paper measures: per-node transmission probability ``tau``,
conditional collision probability ``p``, per-node payoff rate
``(n_s g - n_e e) / t_m`` (the measurement of Section V.C) and channel
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Tuple

import numpy as np

from repro.typealiases import FloatArray
from repro.errors import SimulationError

__all__ = ["ChannelCounters", "NodeCounters", "batch_estimates"]


def batch_estimates(
    xp: Any,
    attempts: Any,
    successes: Any,
    collisions: Any,
    slots_done: Any,
    elapsed_us: Any,
    gain: float,
    cost: float,
    payload_time_us: float,
) -> Tuple[Any, Any, Any, Any]:
    """Vectorized end-of-run estimators on ``(batch, n)`` counter arrays.

    The batched counterpart of the :class:`ChannelCounters` estimator
    methods, shared by every compute backend's finalization path.
    Written against the ``xp`` array namespace (see
    :mod:`repro.backends.array_api`) so array-API libraries can flow
    through unchanged; returns ``(tau, collision, payoff_rates,
    throughput)``.
    """
    total = slots_done[:, None]
    tau = attempts / total
    one = xp.ones_like(attempts)
    collision = xp.where(
        attempts > 0,
        collisions / xp.maximum(attempts, one),
        xp.zeros_like(tau),
    )
    payoff_rates = (
        successes * gain - attempts * cost
    ) / elapsed_us[:, None]
    throughput = (
        xp.sum(successes, axis=1) * payload_time_us / elapsed_us
    )
    return tau, collision, payoff_rates, throughput


@dataclass
class NodeCounters:
    """Per-node event counters of one simulation run.

    Attributes
    ----------
    attempts:
        Number of transmission attempts (``n_e`` in the paper's payoff
        measurement).
    successes:
        Number of successful transmissions (``n_s``).
    collisions:
        Number of attempts that collided.
    """

    attempts: int = 0
    successes: int = 0
    collisions: int = 0

    def check(self) -> None:
        """Internal consistency: attempts = successes + collisions."""
        if self.attempts != self.successes + self.collisions:
            raise SimulationError(
                f"inconsistent counters: {self.attempts} attempts vs "
                f"{self.successes} successes + {self.collisions} collisions"
            )

    def collision_probability(self) -> float:
        """Estimator of ``p``: collisions per attempt (0 if no attempts)."""
        if self.attempts == 0:
            return 0.0
        return self.collisions / self.attempts

    def payoff_rate(self, gain: float, cost: float, elapsed_us: float) -> float:
        """Measured payoff per microsecond, ``(n_s g - n_e e) / t_m``."""
        if elapsed_us <= 0:
            raise SimulationError(
                f"elapsed_us must be positive, got {elapsed_us!r}"
            )
        return (self.successes * gain - self.attempts * cost) / elapsed_us


@dataclass
class ChannelCounters:
    """Channel-level counters of one simulation run.

    Attributes
    ----------
    idle_slots, success_slots, collision_slots:
        Number of virtual slots of each outcome.
    elapsed_us:
        Total simulated wall time in microseconds.
    per_node:
        One :class:`NodeCounters` per node.
    """

    idle_slots: int = 0
    success_slots: int = 0
    collision_slots: int = 0
    elapsed_us: float = 0.0
    per_node: List[NodeCounters] = field(default_factory=list)

    @property
    def total_slots(self) -> int:
        """Total number of virtual slots simulated."""
        return self.idle_slots + self.success_slots + self.collision_slots

    def tau_estimates(self) -> FloatArray:
        """Per-node ``tau`` estimate: attempts per virtual slot."""
        total = self.total_slots
        if total == 0:
            raise SimulationError("no slots simulated")
        return np.array([node.attempts / total for node in self.per_node])

    def collision_estimates(self) -> FloatArray:
        """Per-node ``p`` estimate: collisions per attempt."""
        return np.array(
            [node.collision_probability() for node in self.per_node]
        )

    def payoff_rates(self, gain: float, cost: float) -> FloatArray:
        """Per-node measured payoff per microsecond."""
        return np.array(
            [
                node.payoff_rate(gain, cost, self.elapsed_us)
                for node in self.per_node
            ]
        )

    def throughput(self, payload_time_us: float) -> float:
        """Normalized throughput: payload airtime over elapsed time."""
        if self.elapsed_us <= 0:
            raise SimulationError("no time simulated")
        total_successes = sum(node.successes for node in self.per_node)
        return total_successes * payload_time_us / self.elapsed_us

    def check(self) -> None:
        """Cross-check node counters against channel counters."""
        for node in self.per_node:
            node.check()
        total_successes = sum(node.successes for node in self.per_node)
        if total_successes != self.success_slots:
            raise SimulationError(
                f"success slots ({self.success_slots}) disagree with node "
                f"successes ({total_successes})"
            )
