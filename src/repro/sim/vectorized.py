"""Vectorized struct-of-arrays DCF kernel with a batch axis.

:class:`repro.sim.engine.DcfSimulator` advances a Python list of
:class:`repro.sim.node.BackoffNode` objects one virtual slot at a time -
exact, readable, and the reference implementation - but every experiment
that sweeps windows or replicates runs pays the Python interpreter once
per node per busy slot.  This module holds the whole simulation state as
NumPy integer arrays of shape ``(batch, n_nodes)``:

* ``windows`` - per-node stage-0 contention windows;
* ``stage``   - current backoff stage ``j`` (capped at ``m``);
* ``counter`` - remaining backoff slots.

One kernel iteration advances **every replica in the batch** by its idle
stretch (a ``min`` over the node axis, exactly the event jump of the
reference engine) plus one busy slot (masked success/collision updates and
a single vectorized uniform redraw for all transmitters in the batch).
Cost therefore scales with the busy-event count of the *slowest* replica,
not with ``batch x slots``, which is what makes the Tables II/III grid
sweep one call instead of ``len(grid)`` serial runs.

The kernel is statistically equivalent to the reference engine - same
``(stage, counter)`` machine, same virtual-slot time base, same estimators
- but consumes its random stream in a different order, so matched seeds
give *distributionally* identical, not bit-identical, runs
(``tests/unit/test_sim_vectorized.py`` pins the equivalence against both
the reference engine and the :mod:`repro.bianchi` fixed point).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - circular at runtime only
    from repro.sim.engine import SimulationResult, SlotObserver

import numpy as np

from repro.typealiases import FloatArray, IntArray
from repro.contracts import check_probability, check_window, checks_enabled
from repro.errors import ParameterError, SimulationError
from repro.obs import enabled as _obs_enabled
from repro.obs import span as _obs_span
from repro.obs.metrics import gauge_set as _obs_gauge_set
from repro.obs.metrics import inc as _obs_inc
from repro.phy.parameters import AccessMode, PhyParameters
from repro.phy.timing import SlotTimes, slot_times
from repro.sim.metrics import ChannelCounters, NodeCounters

__all__ = ["BatchResult", "run_batch", "simulate"]

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


@dataclass(frozen=True)
class BatchResult:
    """Per-replica counters and estimates of one batched kernel run.

    All arrays carry the batch axis first; a single-replica run has
    ``batch = 1``.

    Attributes
    ----------
    windows:
        Simulated contention windows, shape ``(batch, n_nodes)``.
    attempts, successes, collisions:
        Per-node event counts, shape ``(batch, n_nodes)``.
    idle_slots, success_slots, collision_slots:
        Per-replica virtual-slot outcome counts, shape ``(batch,)``.
    elapsed_us:
        Per-replica simulated wall time in microseconds, shape
        ``(batch,)``.
    tau:
        Per-node ``tau`` estimates (attempts per virtual slot).
    collision:
        Per-node conditional collision probability estimates.
    payoff_rates:
        Per-node measured payoff per microsecond.
    throughput:
        Per-replica normalized channel throughput, shape ``(batch,)``.
    """

    windows: FloatArray
    attempts: IntArray
    successes: IntArray
    collisions: IntArray
    idle_slots: IntArray
    success_slots: IntArray
    collision_slots: IntArray
    elapsed_us: FloatArray
    tau: FloatArray
    collision: FloatArray
    payoff_rates: FloatArray
    throughput: FloatArray

    @property
    def batch_size(self) -> int:
        """Number of independent replicas simulated."""
        return int(self.windows.shape[0])

    @property
    def n_nodes(self) -> int:
        """Number of stations per replica."""
        return int(self.windows.shape[1])

    @property
    def total_slots(self) -> IntArray:
        """Per-replica total virtual slots simulated, shape ``(batch,)``."""
        return self.idle_slots + self.success_slots + self.collision_slots

    def replica_counters(self, index: int) -> ChannelCounters:
        """Materialise one replica's counters as :class:`ChannelCounters`.

        The returned object passes the same consistency checks as the
        reference engine's, so downstream consumers cannot tell the two
        implementations apart.
        """
        per_node = [
            NodeCounters(
                attempts=int(self.attempts[index, i]),
                successes=int(self.successes[index, i]),
                collisions=int(self.collisions[index, i]),
            )
            for i in range(self.n_nodes)
        ]
        counters = ChannelCounters(
            idle_slots=int(self.idle_slots[index]),
            success_slots=int(self.success_slots[index]),
            collision_slots=int(self.collision_slots[index]),
            elapsed_us=float(self.elapsed_us[index]),
            per_node=per_node,
        )
        counters.check()
        return counters


def _as_window_matrix(windows: Sequence[int] | IntArray) -> IntArray:
    """Coerce ``windows`` to an int64 ``(batch, n_nodes)`` matrix."""
    arr = np.asarray(windows)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2 or arr.size == 0:
        raise ParameterError(
            "windows must be a non-empty 1-D profile or 2-D batch of "
            f"profiles, got shape {arr.shape!r}"
        )
    if not np.issubdtype(arr.dtype, np.number):
        raise ParameterError(f"windows must be numeric, got {arr.dtype!r}")
    matrix = arr.astype(np.int64)
    if np.any(matrix != arr):
        raise ParameterError("windows must be integers")
    check_window(matrix, "windows")
    return matrix


def run_batch(
    windows: Sequence[int] | IntArray,
    params: PhyParameters,
    mode: AccessMode = AccessMode.BASIC,
    *,
    n_slots: int,
    seed: SeedLike = None,
) -> BatchResult:
    """Simulate a batch of independent replicas with the vectorized kernel.

    Parameters
    ----------
    windows:
        Either one per-node window profile (shape ``(n_nodes,)``) or a
        batch of profiles (shape ``(batch, n_nodes)``); each row is one
        independent replica (e.g. one grid point of a window sweep).
    params:
        PHY/MAC constants; supplies ``m``, ``g``, ``e`` and payload time.
    mode:
        Channel access mode (decides ``Ts``/``Tc``).
    n_slots:
        Virtual slots (channel events) to simulate per replica.
    seed:
        ``None``, an int, a :class:`numpy.random.SeedSequence` or a
        :class:`numpy.random.Generator`.  One stream drives the whole
        batch; replicas are independent because their state arrays are.

    Returns
    -------
    BatchResult
    """
    if n_slots < 1:
        raise ParameterError(f"n_slots must be >= 1, got {n_slots!r}")
    window_matrix = np.ascontiguousarray(_as_window_matrix(windows))
    if not _obs_enabled():
        return _run_batch_impl(
            window_matrix, params, mode, n_slots=n_slots, seed=seed
        )
    batch, n_nodes = window_matrix.shape
    with _obs_span(
        "sim.run_batch",
        engine="vectorized",
        batch=batch,
        n_nodes=n_nodes,
        n_slots=n_slots,
    ):
        started = time.perf_counter()
        result = _run_batch_impl(
            window_matrix, params, mode, n_slots=n_slots, seed=seed
        )
        elapsed = time.perf_counter() - started
        _obs_inc("sim.runs", batch, engine="vectorized")
        _obs_inc(
            "sim.slots", int(result.idle_slots.sum()),
            engine="vectorized", kind="idle",
        )
        _obs_inc(
            "sim.slots", int(result.success_slots.sum()),
            engine="vectorized", kind="success",
        )
        _obs_inc(
            "sim.slots", int(result.collision_slots.sum()),
            engine="vectorized", kind="collision",
        )
        if elapsed > 0:
            _obs_gauge_set(
                "sim.slots_per_sec",
                float(result.total_slots.sum()) / elapsed,
                engine="vectorized",
            )
    return result


def _run_batch_impl(
    window_matrix: IntArray,
    params: PhyParameters,
    mode: AccessMode,
    *,
    n_slots: int,
    seed: SeedLike,
) -> BatchResult:
    """The kernel proper, on a validated ``(batch, n_nodes)`` matrix."""
    batch, n_nodes = window_matrix.shape
    max_stage = params.max_backoff_stage
    times: SlotTimes = slot_times(params, mode)
    rng = np.random.default_rng(seed)

    stage = np.zeros((batch, n_nodes), dtype=np.int64)
    counter = np.ascontiguousarray(
        rng.integers(0, window_matrix, dtype=np.int64)
    )
    attempts = np.zeros((batch, n_nodes), dtype=np.int64)
    successes = np.zeros((batch, n_nodes), dtype=np.int64)
    busy_count = np.zeros(batch, dtype=np.int64)
    slots_done = np.zeros(batch, dtype=np.int64)

    # Flat views share memory with the 2-D state; scatter updates for the
    # (few) transmitters per slot avoid full-array np.where temporaries.
    counter_flat = counter.ravel()
    stage_flat = stage.ravel()
    window_flat = window_matrix.ravel()
    attempts_flat = attempts.ravel()
    successes_flat = successes.ravel()

    # Backoff redraws consume one pre-drawn block of uniforms at a time;
    # ``floor(u * bound)`` on float64 uniforms is uniform on
    # ``{0, ..., bound-1}`` up to O(bound / 2^53) bias - immaterial next
    # to the Monte-Carlo noise of any finite run.
    block_size = max(1 << 16, 4 * batch * n_nodes)
    uniform_block = rng.random(block_size)
    block_pos = 0

    # ------------------------------------------------------------------
    # Fast path: every replica is mid-run, so no per-replica masking is
    # needed - each iteration advances the whole batch by one idle jump
    # plus one busy slot with ~20 full-vector ops.
    # ------------------------------------------------------------------
    fast_iterations = 0
    while True:
        jump = counter.min(axis=1)
        if np.any(jump >= n_slots - slots_done):
            break  # some replica exhausts its budget: go to the tail path
        ready_idx = np.flatnonzero(counter == jump[:, np.newaxis])
        rows = ready_idx // n_nodes
        success_flags = np.bincount(rows, minlength=batch)[rows] == 1

        # A node index appears at most once per slot, so plain fancy
        # increments are safe (no np.add.at needed).
        attempts_flat[ready_idx] += 1
        successes_flat[ready_idx[success_flags]] += 1

        new_stage = np.minimum(stage_flat[ready_idx] + 1, max_stage)
        new_stage[success_flags] = 0
        stage_flat[ready_idx] = new_stage
        bounds = window_flat[ready_idx] << new_stage

        k = ready_idx.size
        if block_pos + k > block_size:
            uniform_block = rng.random(block_size)
            block_pos = 0
        draws = (
            uniform_block[block_pos : block_pos + k] * bounds
        ).astype(np.int64)
        block_pos += k

        jump_plus = jump + 1
        counter -= jump_plus[:, np.newaxis]
        counter_flat[ready_idx] = draws
        slots_done += jump_plus
        fast_iterations += 1
    busy_count += fast_iterations

    # ------------------------------------------------------------------
    # Tail path: replicas finish at different events; mask the stragglers.
    # At most a handful of iterations for homogeneous slot budgets.
    # ------------------------------------------------------------------
    active = slots_done < n_slots
    while active.any():
        jump = counter[active].min(axis=1)
        idle = np.minimum(jump, n_slots - slots_done[active])
        counter[active] -= idle[:, np.newaxis]
        slots_done[active] += idle

        # Replicas that still owe slots now have some counter at zero.
        busy = np.flatnonzero(slots_done < n_slots)
        if busy.size == 0:
            break
        sub_counter = counter[busy]
        ready = sub_counter == 0
        success = ready.sum(axis=1) == 1
        success_col = success[:, np.newaxis]
        attempts[busy] += ready
        successes[busy] += ready & success_col

        sub_stage = stage[busy]
        sub_stage = np.where(
            ready,
            np.where(success_col, 0, np.minimum(sub_stage + 1, max_stage)),
            sub_stage,
        )
        stage[busy] = sub_stage

        stage_window = window_matrix[busy] << sub_stage
        draws = rng.integers(0, stage_window[ready], dtype=np.int64)
        new_counter = sub_counter - 1
        new_counter[ready] = draws
        counter[busy] = new_counter

        busy_count[busy] += 1
        slots_done[busy] += 1
        active = slots_done < n_slots

    if np.any(slots_done <= 0):
        raise SimulationError("no slots simulated")  # pragma: no cover

    # Every busy slot with exactly one transmitter was a success; all
    # slot-type totals and the elapsed time follow from the counters.
    collisions = attempts - successes
    success_slots = successes.sum(axis=1)
    collision_slots = busy_count - success_slots
    idle_slots = slots_done - busy_count
    elapsed_us = (
        idle_slots * times.idle_us
        + success_slots * times.success_us
        + collision_slots * times.collision_us
    )

    total = slots_done.astype(np.float64)
    tau = attempts / total[:, np.newaxis]
    collision_prob = np.where(
        attempts > 0, collisions / np.maximum(attempts, 1), 0.0
    )
    payoff_rates = (
        successes * params.gain - attempts * params.cost
    ) / elapsed_us[:, np.newaxis]
    throughput = (
        successes.sum(axis=1) * params.payload_time_us / elapsed_us
    )
    if checks_enabled():
        # One vectorized sweep over the estimators after the kernel
        # loops: O(batch * n) next to the O(events * n) simulation, so
        # the hot path is unaffected (and REPRO_CHECKS=0 removes even
        # this).
        check_probability(tau, "tau estimate")
        check_probability(collision_prob, "collision estimate")
        check_probability(throughput, "throughput", tol=1e-6)
    return BatchResult(
        windows=window_matrix.astype(float),
        attempts=attempts,
        successes=successes,
        collisions=collisions,
        idle_slots=idle_slots,
        success_slots=success_slots,
        collision_slots=collision_slots,
        elapsed_us=elapsed_us,
        tau=tau,
        collision=collision_prob,
        payoff_rates=payoff_rates,
        throughput=throughput,
    )


def simulate(
    windows: Sequence[int],
    params: PhyParameters,
    mode: AccessMode = AccessMode.BASIC,
    *,
    n_slots: int,
    seed: SeedLike = None,
    engine: str = "vectorized",
    observer: Optional[SlotObserver] = None,
) -> SimulationResult:
    """Run one single-collision-domain simulation on a selected engine.

    Dispatches between the reference object-per-node engine
    (:class:`repro.sim.engine.DcfSimulator`, ``engine="reference"``) and
    the vectorized kernel (``engine="vectorized"``); both return the same
    :class:`repro.sim.engine.SimulationResult` type, so call sites choose
    purely on speed.  An ``observer`` forces the reference engine - the
    vectorized kernel does not replay per-slot events.
    """
    if engine not in ("vectorized", "reference"):
        raise ParameterError(
            f"engine must be 'vectorized' or 'reference', got {engine!r}"
        )
    from repro.sim.engine import DcfSimulator, SimulationResult

    if engine == "reference" or observer is not None:
        simulator = DcfSimulator(windows, params, mode, seed=seed)
        return simulator.run(n_slots, observer=observer)

    batch = run_batch(
        np.asarray(list(windows)), params, mode, n_slots=n_slots, seed=seed
    )
    counters = batch.replica_counters(0)
    return SimulationResult(
        counters=counters,
        windows=batch.windows[0],
        tau=counters.tau_estimates(),
        collision=counters.collision_estimates(),
        payoff_rates=counters.payoff_rates(params.gain, params.cost),
        throughput=counters.throughput(params.payload_time_us),
    )
