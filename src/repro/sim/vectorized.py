"""Vectorized struct-of-arrays DCF kernel with a batch axis.

:class:`repro.sim.engine.DcfSimulator` advances a Python list of
:class:`repro.sim.node.BackoffNode` objects one virtual slot at a time -
exact, readable, and the reference implementation - but every experiment
that sweeps windows or replicates runs pays the Python interpreter once
per node per busy slot.  This module holds the whole simulation state as
NumPy integer arrays of shape ``(batch, n_nodes)``:

* ``windows`` - per-node stage-0 contention windows;
* ``stage``   - current backoff stage ``j`` (capped at ``m``);
* ``counter`` - remaining backoff slots.

One kernel iteration advances **every replica in the batch** by its idle
stretch (a ``min`` over the node axis, exactly the event jump of the
reference engine) plus one busy slot (masked success/collision updates and
a single vectorized uniform redraw for all transmitters in the batch).
Cost therefore scales with the busy-event count of the *slowest* replica,
not with ``batch x slots``, which is what makes the Tables II/III grid
sweep one call instead of ``len(grid)`` serial runs.

The kernel is statistically equivalent to the reference engine - same
``(stage, counter)`` machine, same virtual-slot time base, same estimators
- but consumes its random stream in a different order, so matched seeds
give *distributionally* identical, not bit-identical, runs
(``tests/unit/test_sim_vectorized.py`` pins the equivalence against both
the reference engine and the :mod:`repro.bianchi` fixed point).

The inner loop itself is pluggable: :func:`run_batch` dispatches to a
:class:`repro.backends.ComputeBackend` (numpy reference, numba JIT,
self-compiled C, interpreted calendar queue - see :mod:`repro.backends`)
through a *chunked* protocol, and an optional ``stats_interval`` folds
per-interval estimates into streaming Welford accumulators
(:mod:`repro.sim.streaming`) so time-resolved statistics never
materialise a slots-sized axis.  The default numpy backend run as a
single chunk consumes the random stream in exactly the pre-backend
order, so seeded artefacts are bit-identical across this refactor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - circular at runtime only
    from repro.sim.engine import SimulationResult, SlotObserver

import numpy as np

from repro.typealiases import FloatArray, IntArray
from repro.backends import (
    ComputeBackend,
    SimChunkState,
    get_namespace,
    resolve_backend,
)
from repro.contracts import check_probability, check_window, checks_enabled
from repro.errors import ParameterError, SimulationError
from repro.obs import enabled as _obs_enabled
from repro.obs import span as _obs_span
from repro.obs.metrics import inc as _obs_inc
from repro.obs.metrics import rate_gauge as _obs_rate_gauge
from repro.phy.parameters import AccessMode, PhyParameters
from repro.phy.timing import SlotTimes, slot_times
from repro.sim.metrics import ChannelCounters, NodeCounters, batch_estimates
from repro.sim.streaming import StreamingStats, interval_estimates

__all__ = ["BatchResult", "run_batch", "simulate"]

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]

BackendLike = Union[None, str, ComputeBackend]


@dataclass(frozen=True)
class BatchResult:
    """Per-replica counters and estimates of one batched kernel run.

    All arrays carry the batch axis first; a single-replica run has
    ``batch = 1``.

    Attributes
    ----------
    windows:
        Simulated contention windows, shape ``(batch, n_nodes)``.
    attempts, successes, collisions:
        Per-node event counts, shape ``(batch, n_nodes)``.
    idle_slots, success_slots, collision_slots:
        Per-replica virtual-slot outcome counts, shape ``(batch,)``.
    elapsed_us:
        Per-replica simulated wall time in microseconds, shape
        ``(batch,)``.
    tau:
        Per-node ``tau`` estimates (attempts per virtual slot).
    collision:
        Per-node conditional collision probability estimates.
    payoff_rates:
        Per-node measured payoff per microsecond.
    throughput:
        Per-replica normalized channel throughput, shape ``(batch,)``.
    backend:
        Name of the compute backend that ran the kernel.
    streaming:
        Per-interval Welford moments when the run was chunked with
        ``stats_interval``; ``None`` for single-chunk runs.
    """

    windows: FloatArray
    attempts: IntArray
    successes: IntArray
    collisions: IntArray
    idle_slots: IntArray
    success_slots: IntArray
    collision_slots: IntArray
    elapsed_us: FloatArray
    tau: FloatArray
    collision: FloatArray
    payoff_rates: FloatArray
    throughput: FloatArray
    backend: str = "numpy"
    streaming: Optional[StreamingStats] = None

    @property
    def batch_size(self) -> int:
        """Number of independent replicas simulated."""
        return int(self.windows.shape[0])

    @property
    def n_nodes(self) -> int:
        """Number of stations per replica."""
        return int(self.windows.shape[1])

    @property
    def total_slots(self) -> IntArray:
        """Per-replica total virtual slots simulated, shape ``(batch,)``."""
        return self.idle_slots + self.success_slots + self.collision_slots

    def replica_counters(self, index: int) -> ChannelCounters:
        """Materialise one replica's counters as :class:`ChannelCounters`.

        The returned object passes the same consistency checks as the
        reference engine's, so downstream consumers cannot tell the two
        implementations apart.
        """
        per_node = [
            NodeCounters(
                attempts=int(self.attempts[index, i]),
                successes=int(self.successes[index, i]),
                collisions=int(self.collisions[index, i]),
            )
            for i in range(self.n_nodes)
        ]
        counters = ChannelCounters(
            idle_slots=int(self.idle_slots[index]),
            success_slots=int(self.success_slots[index]),
            collision_slots=int(self.collision_slots[index]),
            elapsed_us=float(self.elapsed_us[index]),
            per_node=per_node,
        )
        counters.check()
        return counters


def _as_window_matrix(windows: Sequence[int] | IntArray) -> IntArray:
    """Coerce ``windows`` to an int64 ``(batch, n_nodes)`` matrix."""
    arr = np.asarray(windows)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2 or arr.size == 0:
        raise ParameterError(
            "windows must be a non-empty 1-D profile or 2-D batch of "
            f"profiles, got shape {arr.shape!r}"
        )
    if not np.issubdtype(arr.dtype, np.number):
        raise ParameterError(f"windows must be numeric, got {arr.dtype!r}")
    matrix = arr.astype(np.int64)
    if np.any(matrix != arr):
        raise ParameterError("windows must be integers")
    check_window(matrix, "windows")
    return matrix


def run_batch(
    windows: Sequence[int] | IntArray,
    params: PhyParameters,
    mode: AccessMode = AccessMode.BASIC,
    *,
    n_slots: int,
    seed: SeedLike = None,
    backend: BackendLike = None,
    stats_interval: Optional[int] = None,
) -> BatchResult:
    """Simulate a batch of independent replicas with the vectorized kernel.

    Parameters
    ----------
    windows:
        Either one per-node window profile (shape ``(n_nodes,)``) or a
        batch of profiles (shape ``(batch, n_nodes)``); each row is one
        independent replica (e.g. one grid point of a window sweep).
    params:
        PHY/MAC constants; supplies ``m``, ``g``, ``e`` and payload time.
    mode:
        Channel access mode (decides ``Ts``/``Tc``).
    n_slots:
        Virtual slots (channel events) to simulate per replica.
    seed:
        ``None``, an int, a :class:`numpy.random.SeedSequence` or a
        :class:`numpy.random.Generator`.  One stream drives the whole
        batch; replicas are independent because their state arrays are.
    backend:
        Compute backend running the inner loop: a registered name, a
        :class:`~repro.backends.ComputeBackend` instance, or ``None``
        for the configured default (``REPRO_BACKEND`` environment
        variable, CLI ``--backend``, campaign ``backend:`` field; numpy
        otherwise).  Unavailable backends fall back to numpy with a
        warning.
    stats_interval:
        When set, run the kernel in chunks of this many virtual slots
        and fold per-interval estimates into streaming Welford
        accumulators (:attr:`BatchResult.streaming`).  Memory stays
        ``O(batch x n)`` regardless of ``n_slots``.

    Returns
    -------
    BatchResult
    """
    if n_slots < 1:
        raise ParameterError(f"n_slots must be >= 1, got {n_slots!r}")
    if stats_interval is not None and stats_interval < 1:
        raise ParameterError(
            f"stats_interval must be >= 1, got {stats_interval!r}"
        )
    window_matrix = np.ascontiguousarray(_as_window_matrix(windows))
    resolved = (
        backend
        if isinstance(backend, ComputeBackend)
        else resolve_backend(backend)
    )
    if not _obs_enabled():
        return _run_batch_impl(
            window_matrix,
            params,
            mode,
            n_slots=n_slots,
            seed=seed,
            backend=resolved,
            stats_interval=stats_interval,
        )
    batch, n_nodes = window_matrix.shape
    with _obs_span(
        "sim.run_batch",
        engine="vectorized",
        backend=resolved.name,
        batch=batch,
        n_nodes=n_nodes,
        n_slots=n_slots,
    ):
        with _obs_rate_gauge(
            "sim.slots_per_sec", engine="vectorized", backend=resolved.name
        ) as probe:
            result = _run_batch_impl(
                window_matrix,
                params,
                mode,
                n_slots=n_slots,
                seed=seed,
                backend=resolved,
                stats_interval=stats_interval,
            )
            probe.count = float(result.total_slots.sum())
        _obs_inc(
            "sim.runs", batch, engine="vectorized", backend=resolved.name
        )
        _obs_inc(
            "sim.slots", int(result.idle_slots.sum()),
            engine="vectorized", backend=resolved.name, kind="idle",
        )
        _obs_inc(
            "sim.slots", int(result.success_slots.sum()),
            engine="vectorized", backend=resolved.name, kind="success",
        )
        _obs_inc(
            "sim.slots", int(result.collision_slots.sum()),
            engine="vectorized", backend=resolved.name, kind="collision",
        )
    return result


def _run_batch_impl(
    window_matrix: IntArray,
    params: PhyParameters,
    mode: AccessMode,
    *,
    n_slots: int,
    seed: SeedLike,
    backend: ComputeBackend,
    stats_interval: Optional[int],
) -> BatchResult:
    """Drive the backend kernel on a validated ``(batch, n)`` matrix."""
    batch, n_nodes = window_matrix.shape
    max_stage = params.max_backoff_stage
    times: SlotTimes = slot_times(params, mode)
    state = SimChunkState.allocate(
        batch, n_nodes, backend.init_sim_rng(seed, batch)
    )

    streaming: Optional[StreamingStats] = None
    if stats_interval is None:
        # One chunk covering the whole budget: on the numpy backend this
        # consumes the random stream in exactly the pre-backend order,
        # keeping seeded artefacts bit-identical.
        backend.sim_chunk(window_matrix, max_stage, n_slots, state)
    else:
        streaming = StreamingStats(interval_slots=stats_interval)
        xp = get_namespace(state.attempts)
        prev_attempts = state.attempts.copy()
        prev_successes = state.successes.copy()
        prev_busy = state.busy_count.copy()
        prev_slots = state.slots_done.copy()
        done = 0
        while done < n_slots:
            target = min(done + stats_interval, n_slots)
            backend.sim_chunk(window_matrix, max_stage, target, state)
            tau_i, collision_i, throughput_i = interval_estimates(
                xp,
                state.attempts - prev_attempts,
                state.successes - prev_successes,
                state.busy_count - prev_busy,
                state.slots_done - prev_slots,
                times.idle_us,
                times.success_us,
                times.collision_us,
                params.payload_time_us,
            )
            streaming.fold(tau_i, collision_i, throughput_i)
            prev_attempts[...] = state.attempts
            prev_successes[...] = state.successes
            prev_busy[...] = state.busy_count
            prev_slots[...] = state.slots_done
            done = target

    attempts = state.attempts
    successes = state.successes
    busy_count = state.busy_count
    slots_done = state.slots_done
    if np.any(slots_done < n_slots):
        raise SimulationError(  # pragma: no cover - backend bug guard
            f"backend {backend.name!r} left lanes short of the slot budget"
        )
    if np.any(slots_done <= 0):
        raise SimulationError("no slots simulated")  # pragma: no cover

    # Every busy slot with exactly one transmitter was a success; all
    # slot-type totals and the elapsed time follow from the counters.
    collisions = attempts - successes
    success_slots = successes.sum(axis=1)
    collision_slots = busy_count - success_slots
    idle_slots = slots_done - busy_count
    elapsed_us = (
        idle_slots * times.idle_us
        + success_slots * times.success_us
        + collision_slots * times.collision_us
    )

    xp = get_namespace(attempts)
    tau, collision_prob, payoff_rates, throughput = batch_estimates(
        xp,
        attempts,
        successes,
        collisions,
        slots_done,
        elapsed_us,
        params.gain,
        params.cost,
        params.payload_time_us,
    )
    if checks_enabled():
        # One vectorized sweep over the estimators after the kernel
        # loops: O(batch * n) next to the O(events * n) simulation, so
        # the hot path is unaffected (and REPRO_CHECKS=0 removes even
        # this).
        check_probability(tau, "tau estimate")
        check_probability(collision_prob, "collision estimate")
        check_probability(throughput, "throughput", tol=1e-6)
    return BatchResult(
        windows=window_matrix.astype(float),
        attempts=attempts,
        successes=successes,
        collisions=collisions,
        idle_slots=idle_slots,
        success_slots=success_slots,
        collision_slots=collision_slots,
        elapsed_us=elapsed_us,
        tau=tau,
        collision=collision_prob,
        payoff_rates=payoff_rates,
        throughput=throughput,
        backend=backend.name,
        streaming=streaming,
    )


def simulate(
    windows: Sequence[int],
    params: PhyParameters,
    mode: AccessMode = AccessMode.BASIC,
    *,
    n_slots: int,
    seed: SeedLike = None,
    engine: str = "vectorized",
    backend: BackendLike = None,
    observer: Optional[SlotObserver] = None,
) -> SimulationResult:
    """Run one single-collision-domain simulation on a selected engine.

    Dispatches between the reference object-per-node engine
    (:class:`repro.sim.engine.DcfSimulator`, ``engine="reference"``) and
    the vectorized kernel (``engine="vectorized"``); both return the same
    :class:`repro.sim.engine.SimulationResult` type, so call sites choose
    purely on speed.  An ``observer`` forces the reference engine - the
    vectorized kernel does not replay per-slot events.  ``backend``
    selects the vectorized kernel's compute backend (ignored by the
    reference engine).
    """
    if engine not in ("vectorized", "reference"):
        raise ParameterError(
            f"engine must be 'vectorized' or 'reference', got {engine!r}"
        )
    from repro.sim.engine import DcfSimulator, SimulationResult

    if engine == "reference" or observer is not None:
        simulator = DcfSimulator(windows, params, mode, seed=seed)
        return simulator.run(n_slots, observer=observer)

    batch = run_batch(
        np.asarray(list(windows)),
        params,
        mode,
        n_slots=n_slots,
        seed=seed,
        backend=backend,
    )
    counters = batch.replica_counters(0)
    return SimulationResult(
        counters=counters,
        windows=batch.windows[0],
        tau=counters.tau_estimates(),
        collision=counters.collision_estimates(),
        payoff_rates=counters.payoff_rates(params.gain, params.cost),
        throughput=counters.throughput(params.payload_time_us),
    )
