"""Slot-accurate saturated-DCF simulator (the paper's NS-2 stand-in).

The paper validates its analytical model against NS-2.  This subpackage
replaces NS-2 with a from-scratch simulator at exactly the abstraction
level of the analysis (see DESIGN.md for the substitution argument):

* :mod:`repro.sim.node` - per-node binary-exponential-backoff state
  machine;
* :mod:`repro.sim.engine` - single-collision-domain simulator in Bianchi's
  virtual-slot time base (idle slot / success / collision), event-advanced
  so long backoffs cost O(1);
* :mod:`repro.sim.metrics` - per-node and channel counters with
  estimators for ``tau``, ``p``, throughput and payoff;
* :mod:`repro.sim.vectorized` - struct-of-arrays kernel with a batch
  axis: statistically equivalent to the reference engine but runs many
  replicas / grid points per call at 10-40x the slot throughput
  (``run_batch``), dispatching its inner loop through the pluggable
  compute backends of :mod:`repro.backends`, plus the ``simulate``
  engine dispatch;
* :mod:`repro.sim.streaming` - Welford accumulators folding
  per-interval estimates out of chunked runs in ``O(batch x n)``
  memory;
* :mod:`repro.sim.adaptive` - the per-node "best CW" measurement used for
  the simulated columns of Tables II/III;
* :mod:`repro.sim.spatial` - spatial slot-synchronous multi-hop simulator
  with carrier sensing and hidden terminals (Section VI validation).

The object-per-node :class:`DcfSimulator` stays the *reference*
implementation: it is the literal transcription of the paper's state
machine and the ground truth the vectorized kernel is tested against.
"""

from repro.sim.node import BackoffNode
from repro.sim.engine import DcfSimulator, SimulationResult
from repro.sim.metrics import ChannelCounters, NodeCounters
from repro.sim.adaptive import PerNodeOptimum, measure_per_node_optimum
from repro.sim.spatial import SpatialResult, SpatialSimulator
from repro.sim.streaming import StreamingStats, WelfordAccumulator
from repro.sim.vectorized import BatchResult, run_batch, simulate

__all__ = [
    "BackoffNode",
    "BatchResult",
    "ChannelCounters",
    "DcfSimulator",
    "NodeCounters",
    "PerNodeOptimum",
    "SimulationResult",
    "SpatialResult",
    "SpatialSimulator",
    "StreamingStats",
    "WelfordAccumulator",
    "measure_per_node_optimum",
    "run_batch",
    "simulate",
]
