"""Streaming (Welford) statistics for chunked simulator runs.

When :func:`repro.sim.vectorized.run_batch` is given a
``stats_interval``, the kernel advances in chunks of that many virtual
slots and, after each chunk, folds the *interval* estimates (per-node
``tau`` and collision probability, per-replica throughput) into the
online accumulators defined here.  The state carried between chunks is
``O(batch x n)`` - mean and M2 arrays per estimator - so time-resolved
statistics (means and across-interval variances) come out of a run
without ever materialising an array with a slots-sized axis; the
regression test ``tests/unit/test_streaming_memory.py`` pins that bound
with ``tracemalloc``.

Everything here is plain array math written against an ``xp`` namespace
parameter (see :mod:`repro.backends.array_api`), so the accumulators
work unchanged on any array-API library a future backend computes with;
lint rule ``REPRO006`` keeps direct ``numpy`` calls out of these
functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.backends.array_api import get_namespace
from repro.errors import SimulationError

__all__ = [
    "StreamingStats",
    "WelfordAccumulator",
    "interval_estimates",
]


@dataclass
class WelfordAccumulator:
    """Online mean/variance over a stream of equally-shaped samples.

    The classic numerically stable update: per observed array, keep the
    running count, mean and sum of squared deviations (``M2``).  Memory
    is two arrays of the sample's shape, independent of how many samples
    are folded in.
    """

    count: int = 0
    mean: Optional[Any] = None
    _m2: Optional[Any] = None

    def update(self, sample: Any) -> None:
        """Fold one sample array into the running moments."""
        xp = get_namespace(sample, self.mean)
        if self.count == 0:
            self.mean = xp.zeros_like(sample)
            self._m2 = xp.zeros_like(sample)
        self.count += 1
        delta = sample - self.mean
        self.mean = self.mean + delta / self.count
        self._m2 = self._m2 + delta * (sample - self.mean)

    def merge(self, other: "WelfordAccumulator") -> None:
        """Fold another accumulator's moments into this one in place.

        The parallel-combination formula (Chan et al.): with counts
        ``na``/``nb``, means and ``M2`` from two disjoint sample
        streams,

        ``mean = mean_a + delta nb / (na + nb)``,
        ``M2 = M2_a + M2_b + delta^2 na nb / (na + nb)``,

        where ``delta = mean_b - mean_a``.  The result is exactly the
        accumulator a single observer would hold after seeing both
        streams, so sharded observers (e.g. the population screening
        pipeline splitting chunks across monitors) can combine without
        revisiting samples.  Merging an empty accumulator is a no-op;
        merging into an empty one copies ``other``.
        """
        if other.count == 0:
            return
        if self.count == 0:
            xp = get_namespace(other.mean)
            self.count = other.count
            self.mean = other.mean + xp.zeros_like(other.mean)
            self._m2 = other._m2 + xp.zeros_like(other._m2)
            return
        xp = get_namespace(self.mean, other.mean)
        count = self.count + other.count
        delta = other.mean - self.mean
        self.mean = self.mean + delta * (other.count / count)
        self._m2 = (
            self._m2
            + other._m2
            + delta * delta * (self.count * other.count / count)
        )
        self.count = count

    def variance(self) -> Any:
        """Unbiased across-sample variance (zeros until two samples)."""
        if self.count == 0:
            raise SimulationError("no samples folded into accumulator")
        xp = get_namespace(self.mean)
        if self.count < 2:
            return xp.zeros_like(self.mean)
        return self._m2 / (self.count - 1)

    def std(self) -> Any:
        """Across-sample standard deviation."""
        xp = get_namespace(self.mean)
        return xp.sqrt(self.variance())


@dataclass
class StreamingStats:
    """Per-interval estimator moments of one chunked simulator run.

    Attributes
    ----------
    interval_slots:
        Virtual slots per interval (the run's ``stats_interval``; the
        final interval may be shorter when it does not divide
        ``n_slots``).
    tau:
        Per-node ``tau`` interval estimates, shape ``(batch, n)``.
    collision:
        Per-node conditional collision interval estimates, same shape.
    throughput:
        Per-replica normalized throughput interval estimates, shape
        ``(batch,)``.
    """

    interval_slots: int
    tau: WelfordAccumulator = field(default_factory=WelfordAccumulator)
    collision: WelfordAccumulator = field(
        default_factory=WelfordAccumulator
    )
    throughput: WelfordAccumulator = field(
        default_factory=WelfordAccumulator
    )

    @property
    def n_intervals(self) -> int:
        """Number of intervals folded in so far."""
        return self.tau.count

    def fold(
        self, tau: Any, collision: Any, throughput: Any
    ) -> None:
        """Fold one interval's estimates into the accumulators."""
        self.tau.update(tau)
        self.collision.update(collision)
        self.throughput.update(throughput)


def interval_estimates(
    xp: Any,
    delta_attempts: Any,
    delta_successes: Any,
    delta_busy: Any,
    delta_slots: Any,
    idle_us: float,
    success_us: float,
    collision_us: float,
    payload_time_us: float,
) -> Tuple[Any, Any, Any]:
    """Estimates over one interval from counter deltas.

    Parameters are the differences of the cumulative kernel counters
    across one chunk: ``(batch, n)`` attempt/success deltas and
    ``(batch,)`` busy-slot and total-slot deltas, plus the slot-time
    constants.  Returns ``(tau, collision, throughput)`` with the same
    estimator definitions as the end-of-run batch estimates, restricted
    to the interval.
    """
    slots = delta_slots[:, None]
    tau = delta_attempts / slots
    delta_collisions = delta_attempts - delta_successes
    one = xp.ones_like(delta_attempts)
    collision = xp.where(
        delta_attempts > 0,
        delta_collisions / xp.maximum(delta_attempts, one),
        xp.zeros_like(tau),
    )
    success_slots = xp.sum(delta_successes, axis=1)
    collision_slots = delta_busy - success_slots
    idle_slots = delta_slots - delta_busy
    elapsed_us = (
        idle_slots * idle_us
        + success_slots * success_us
        + collision_slots * collision_us
    )
    throughput = success_slots * payload_time_us / elapsed_us
    return tau, collision, throughput
