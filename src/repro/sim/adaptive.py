"""Simulated per-node optimal CW (the ``W_c*``-bar columns of Tables II/III).

The paper's simulation lets every node find "the CW value that maximises
its own payoff" under joint movement (all nodes share the window, as TFT
enforces after convergence) and reports the mean and variance of the
per-node optima.  We reproduce the measurement directly:

1. sweep a grid of common windows around the analytical optimum;
2. simulate each grid point, recording every node's *own measured payoff*
   (a noisy estimate - each node sees its own successes and attempts);
3. each node picks the grid window maximising its measured payoff;
4. report the mean and variance of those per-node choices.

Because the symmetric utility is extremely flat around ``W_c*``, the
per-node argmaxes scatter across the plateau; their spread is exactly the
``Var(W_c*)`` the paper tabulates.

By default the whole grid is simulated in **one** call of the vectorized
kernel (:func:`repro.sim.vectorized.run_batch`) with every grid point
split into a few independent replicas - one batched pass instead of
``len(grid)`` serial runs, 10-40x faster on the Table III ``n = 50``
workload.  ``engine="reference"`` falls back to the per-point
:class:`repro.sim.engine.DcfSimulator` loop (the ground-truth path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.typealiases import FloatArray, IntArray
from repro.errors import ParameterError
from repro.game.equilibrium import efficient_window
from repro.phy.parameters import AccessMode, PhyParameters
from repro.phy.timing import slot_times
from repro.sim.engine import DcfSimulator
from repro.sim.vectorized import run_batch

__all__ = ["PerNodeOptimum", "measure_per_node_optimum", "default_window_grid"]


@dataclass(frozen=True)
class PerNodeOptimum:
    """Result of the per-node optimum measurement.

    Attributes
    ----------
    grid:
        The common-window grid swept.
    payoffs:
        Measured per-node payoff rates, shape ``(len(grid), n_nodes)``.
    per_node_windows:
        Each node's payoff-maximising grid window.
    mean:
        Mean of the per-node optima (the table's ``W_c*``-bar).
    variance:
        Population variance of the per-node optima (``Var(W_c*)``).
    """

    grid: IntArray
    payoffs: FloatArray
    per_node_windows: FloatArray
    mean: float
    variance: float


def default_window_grid(
    analytic_optimum: int, *, half_width: float = 0.4, n_points: int = 17
) -> IntArray:
    """A window grid centred on the analytical optimum.

    Spans ``[(1 - half_width) W*, (1 + half_width) W*]`` with
    ``n_points`` roughly evenly spaced integer windows (duplicates
    removed, all >= 1).
    """
    if analytic_optimum < 1:
        raise ParameterError(
            f"analytic_optimum must be >= 1, got {analytic_optimum!r}"
        )
    if not 0 < half_width < 1:
        raise ParameterError(
            f"half_width must lie in (0, 1), got {half_width!r}"
        )
    if n_points < 3:
        raise ParameterError(f"n_points must be >= 3, got {n_points!r}")
    lo = max(1, int(round(analytic_optimum * (1.0 - half_width))))
    hi = max(lo + 1, int(round(analytic_optimum * (1.0 + half_width))))
    grid = np.unique(np.linspace(lo, hi, n_points).round().astype(int))
    return grid


def _vectorized_payoffs(
    grid: IntArray,
    n_nodes: int,
    params: PhyParameters,
    mode: AccessMode,
    *,
    slots_per_point: int,
    replicas_per_point: int,
    seed: np.random.SeedSequence,
) -> FloatArray:
    """Measured per-node payoffs for every grid window, one kernel call.

    Each grid point becomes ``replicas_per_point`` rows of the batch;
    their event counters are pooled before the payoff-rate estimate, so
    the estimator sees the same total observation budget as a single long
    run (the replicas merely restart the backoff transient, which decays
    within a few window-lengths of slots).
    """
    replicas = replicas_per_point
    slots_per_replica = -(-slots_per_point // replicas)  # ceil division
    profile = np.repeat(grid, replicas)[:, np.newaxis]
    batch_windows = np.broadcast_to(
        profile, (grid.size * replicas, n_nodes)
    )
    result = run_batch(
        batch_windows, params, mode, n_slots=slots_per_replica, seed=seed
    )
    shape = (grid.size, replicas, n_nodes)
    successes = result.successes.reshape(shape).sum(axis=1)
    attempts = result.attempts.reshape(shape).sum(axis=1)
    elapsed = result.elapsed_us.reshape(grid.size, replicas).sum(axis=1)
    return (
        successes * params.gain - attempts * params.cost
    ) / elapsed[:, np.newaxis]


def measure_per_node_optimum(
    n_nodes: int,
    params: PhyParameters,
    mode: AccessMode = AccessMode.BASIC,
    *,
    grid: Optional[Sequence[int]] = None,
    slots_per_point: int = 200_000,
    seed: Union[int, np.random.SeedSequence] = 0,
    engine: str = "vectorized",
    replicas_per_point: int = 4,
) -> PerNodeOptimum:
    """Run the Tables II/III simulated-optimum measurement.

    Parameters
    ----------
    n_nodes:
        Network size.
    params, mode:
        Model constants and access mode.
    grid:
        Common windows to sweep; defaults to a grid around the analytic
        ``W_c*``.
    slots_per_point:
        Virtual slots simulated per grid point.  More slots means less
        measurement noise, hence smaller ``Var(W_c*)``.
    seed:
        Root seed (int or :class:`numpy.random.SeedSequence`).  Every
        stream the measurement consumes is spawned from it, so one root
        seed reproduces the whole sweep exactly.
    engine:
        ``"vectorized"`` (default) simulates the whole grid in one
        batched kernel call; ``"reference"`` runs the per-point
        object-per-node simulator.
    replicas_per_point:
        Vectorized engine only: number of independent replicas each grid
        point is split into (their counters are pooled before the payoff
        estimate, so each point still sees ``>= slots_per_point`` virtual
        slots).  Larger batches amortise the kernel's per-event cost.

    Returns
    -------
    PerNodeOptimum
    """
    if n_nodes < 2:
        raise ParameterError(f"n_nodes must be >= 2, got {n_nodes!r}")
    if engine not in ("vectorized", "reference"):
        raise ParameterError(
            f"engine must be 'vectorized' or 'reference', got {engine!r}"
        )
    if replicas_per_point < 1:
        raise ParameterError(
            f"replicas_per_point must be >= 1, got {replicas_per_point!r}"
        )
    if grid is None:
        analytic = efficient_window(n_nodes, params, slot_times(params, mode))
        grid = default_window_grid(analytic)
    grid_arr = np.asarray(sorted({int(w) for w in grid}), dtype=int)
    if grid_arr.size < 2:
        raise ParameterError("grid must contain at least two windows")
    if np.any(grid_arr < 1):
        raise ParameterError(f"grid windows must be >= 1, got {grid_arr!r}")
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )

    if engine == "vectorized":
        payoffs = _vectorized_payoffs(
            grid_arr,
            n_nodes,
            params,
            mode,
            slots_per_point=slots_per_point,
            replicas_per_point=replicas_per_point,
            seed=root.spawn(1)[0],
        )
    else:
        payoffs = np.empty((grid_arr.size, n_nodes), dtype=float)
        children = root.spawn(grid_arr.size)
        for index, window in enumerate(grid_arr):
            simulator = DcfSimulator(
                [int(window)] * n_nodes, params, mode, seed=children[index]
            )
            result = simulator.run(slots_per_point)
            payoffs[index] = result.payoff_rates

    best_indices = payoffs.argmax(axis=0)
    per_node = grid_arr[best_indices].astype(float)
    return PerNodeOptimum(
        grid=grid_arr,
        payoffs=payoffs,
        per_node_windows=per_node,
        mean=float(per_node.mean()),
        variance=float(per_node.var()),
    )
