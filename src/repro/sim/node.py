"""Binary-exponential-backoff state machine of one saturated node.

The state is ``(stage, counter)`` exactly as in the paper's Markov chain
(Figure 1): at stage ``j`` the node draws a uniform counter from
``{0, ..., 2^min(j, m) W - 1}``, decrements it once per virtual slot, and
transmits when it reaches zero.  Success resets the stage to 0; a
collision advances it (capped at ``m``).  The node is saturated: a new
packet is always waiting, so a new backoff starts immediately.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError, SimulationError

__all__ = ["BackoffNode"]


class BackoffNode:
    """One saturated DCF station.

    Parameters
    ----------
    window:
        Initial (stage-0) contention window ``W >= 1``; integer.
    max_stage:
        Maximum number of window doublings ``m >= 0``.
    rng:
        Random generator used for counter draws.

    Attributes
    ----------
    stage:
        Current backoff stage ``j``.
    counter:
        Remaining backoff slots before the next transmission attempt.
    """

    __slots__ = ("window", "max_stage", "rng", "stage", "counter")

    def __init__(
        self, window: int, max_stage: int, rng: np.random.Generator
    ) -> None:
        if window < 1:
            raise ParameterError(f"window must be >= 1, got {window!r}")
        if max_stage < 0:
            raise ParameterError(f"max_stage must be >= 0, got {max_stage!r}")
        self.window = int(window)
        self.max_stage = int(max_stage)
        self.rng = rng
        self.stage = 0
        self.counter = self._draw()

    # ------------------------------------------------------------------
    def _stage_window(self) -> int:
        return self.window * (2 ** min(self.stage, self.max_stage))

    def _draw(self) -> int:
        return int(self.rng.integers(0, self._stage_window()))

    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """Whether the node transmits in the current virtual slot."""
        return self.counter == 0

    def tick(self, slots: int = 1) -> None:
        """Advance the backoff countdown by ``slots`` virtual slots."""
        if slots < 0:
            raise SimulationError(f"cannot tick by {slots!r} slots")
        if slots > self.counter:
            raise SimulationError(
                f"tick of {slots} slots would overshoot counter "
                f"{self.counter}"
            )
        self.counter -= slots

    def on_success(self) -> None:
        """Packet delivered: reset to stage 0 and start the next backoff."""
        if not self.ready:
            raise SimulationError("on_success on a node that did not transmit")
        self.stage = 0
        self.counter = self._draw()

    def on_collision(self) -> None:
        """Collision: double the window (capped) and back off again."""
        if not self.ready:
            raise SimulationError(
                "on_collision on a node that did not transmit"
            )
        self.stage = min(self.stage + 1, self.max_stage)
        self.counter = self._draw()

    def set_window(self, window: int) -> None:
        """Reconfigure the stage-0 window (a new game stage beginning).

        The backoff restarts at stage 0 with the new window, matching a
        node that re-tunes its CW between stages of the repeated game.
        """
        if window < 1:
            raise ParameterError(f"window must be >= 1, got {window!r}")
        self.window = int(window)
        self.stage = 0
        self.counter = self._draw()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BackoffNode(window={self.window}, stage={self.stage}, "
            f"counter={self.counter})"
        )
