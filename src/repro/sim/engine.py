"""Single-collision-domain DCF simulator in virtual-slot time.

The simulator lives in exactly the time base of Bianchi's chain: a
*virtual slot* is one channel event - an idle slot (duration ``sigma``), a
successful transmission (``Ts``) or a collision (``Tc``).  Every node's
backoff counter decrements once per virtual slot, nodes with counter zero
transmit, and the outcome is decided by how many transmitted.  This makes
the simulator an exact sampler of the analytical model's process, so the
fixed-point predictions of :mod:`repro.bianchi` are its large-sample
limits - the property Tables II/III rely on.

Long idle stretches are event-advanced: the engine jumps straight to the
next slot in which some counter reaches zero, so simulation cost scales
with the number of *transmissions*, not slots.

This engine deliberately stays outside the compute-backend registry
(:mod:`repro.backends`): it is the ground truth the backend equivalence
tests compare against, so it must never itself be re-dispatched through
the machinery under test.  Callers that want the pluggable/accelerated
path use :func:`repro.sim.vectorized.run_batch` (or ``simulate`` with
``engine="vectorized"``) and pick a backend there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, Union

import numpy as np

from repro.typealiases import FloatArray
from repro.errors import ParameterError
from repro.obs import enabled as _obs_enabled
from repro.obs import span as _obs_span
from repro.obs.metrics import inc as _obs_inc
from repro.obs.metrics import rate_gauge as _obs_rate_gauge
from repro.phy.parameters import AccessMode, PhyParameters
from repro.phy.timing import SlotTimes, slot_times
from repro.sim.metrics import ChannelCounters, NodeCounters
from repro.sim.node import BackoffNode

__all__ = ["DcfSimulator", "SimulationResult", "SlotObserver"]


class SlotObserver(Protocol):
    """Structural type of a promiscuous per-slot observer.

    :class:`repro.detect.estimator.WindowObserver` is the canonical
    implementation; anything with these two methods can watch a run.
    """

    def record_idle(self, slots: int = 1) -> None:
        """Log ``slots`` idle virtual slots."""

    def record_transmission(
        self, transmitters: Sequence[int], success: bool
    ) -> None:
        """Log one busy virtual slot with its attempting nodes."""


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulator run.

    Attributes
    ----------
    counters:
        Raw channel and per-node counters.
    windows:
        The per-node contention windows simulated.
    tau:
        Per-node ``tau`` estimates.
    collision:
        Per-node conditional collision probability estimates.
    payoff_rates:
        Per-node measured payoff per microsecond,
        ``(n_s g - n_e e) / t``.
    throughput:
        Normalized channel throughput.
    """

    counters: ChannelCounters
    windows: FloatArray
    tau: FloatArray
    collision: FloatArray
    payoff_rates: FloatArray
    throughput: float


class DcfSimulator:
    """Simulate ``n`` saturated selfish nodes in one collision domain.

    Parameters
    ----------
    windows:
        Per-node contention windows (positive integers).
    params:
        PHY/MAC constants; supplies ``m``, ``g``, ``e`` and payload time.
    mode:
        Channel access mode (decides ``Ts``/``Tc``).
    seed:
        Seed for the simulation's random generator: ``None``, an int, a
        :class:`numpy.random.SeedSequence` or a ready-made
        :class:`numpy.random.Generator`.  Callers that replicate runs
        should spawn children from one root ``SeedSequence`` (see
        :mod:`repro.experiments.parallel`) so replicas use provably
        independent streams.

    Examples
    --------
    >>> from repro.phy import default_parameters
    >>> sim = DcfSimulator([78] * 5, default_parameters(), seed=1)
    >>> result = sim.run(50_000)
    >>> bool(abs(result.tau.mean() - 0.023) < 0.005)
    True
    """

    def __init__(
        self,
        windows: Sequence[int],
        params: PhyParameters,
        mode: AccessMode = AccessMode.BASIC,
        *,
        seed: Union[
            None, int, np.random.SeedSequence, np.random.Generator
        ] = None,
    ) -> None:
        window_list = [int(w) for w in windows]
        if not window_list:
            raise ParameterError("windows must be non-empty")
        if any(w < 1 for w in window_list):
            raise ParameterError(f"all windows must be >= 1, got {window_list!r}")
        self.params = params
        self.mode = mode
        self.times: SlotTimes = slot_times(params, mode)
        self.rng = np.random.default_rng(seed)
        self.nodes = [
            BackoffNode(w, params.max_backoff_stage, self.rng)
            for w in window_list
        ]

    @property
    def n_nodes(self) -> int:
        """Number of stations being simulated."""
        return len(self.nodes)

    def set_windows(self, windows: Sequence[int]) -> None:
        """Reconfigure every node's window (a new stage of the game)."""
        window_list = [int(w) for w in windows]
        if len(window_list) != self.n_nodes:
            raise ParameterError(
                f"need {self.n_nodes} windows, got {len(window_list)}"
            )
        for node, window in zip(self.nodes, window_list):
            node.set_window(window)

    # ------------------------------------------------------------------
    def run(
        self, n_slots: int, *, observer: Optional[SlotObserver] = None
    ) -> SimulationResult:
        """Simulate ``n_slots`` virtual slots and return the estimates.

        Parameters
        ----------
        n_slots:
            Number of virtual slots (channel events) to simulate.  The
            run may end a few slots past the target when the final idle
            jump overshoots; counters reflect the slots actually
            simulated.
        observer:
            Optional promiscuous observer (duck-typed to
            :class:`repro.detect.estimator.WindowObserver`): it receives
            ``record_idle(slots)`` for idle stretches and
            ``record_transmission(transmitters, success)`` per busy
            slot, exactly what a monitoring station overhears.
        """
        if n_slots < 1:
            raise ParameterError(f"n_slots must be >= 1, got {n_slots!r}")
        if not _obs_enabled():
            return self._run(n_slots, observer)
        with _obs_span(
            "sim.run",
            engine="reference",
            n_nodes=self.n_nodes,
            n_slots=n_slots,
        ):
            with _obs_rate_gauge(
                "sim.slots_per_sec", engine="reference"
            ) as probe:
                result = self._run(n_slots, observer)
                counters = result.counters
                probe.count = (
                    counters.idle_slots
                    + counters.success_slots
                    + counters.collision_slots
                )
            _obs_inc("sim.runs", 1, engine="reference")
            _obs_inc(
                "sim.slots", counters.idle_slots,
                engine="reference", kind="idle",
            )
            _obs_inc(
                "sim.slots", counters.success_slots,
                engine="reference", kind="success",
            )
            _obs_inc(
                "sim.slots", counters.collision_slots,
                engine="reference", kind="collision",
            )
        return result

    def _run(
        self, n_slots: int, observer: Optional[SlotObserver]
    ) -> SimulationResult:
        counters = ChannelCounters(
            per_node=[NodeCounters() for _ in range(self.n_nodes)]
        )
        times = self.times
        nodes = self.nodes

        slots_done = 0
        while slots_done < n_slots:
            jump = min(node.counter for node in nodes)
            if jump > 0:
                # Idle stretch: every counter survives the jump.
                idle = min(jump, n_slots - slots_done)
                for node in nodes:
                    node.tick(idle)
                counters.idle_slots += idle
                counters.elapsed_us += idle * times.idle_us
                slots_done += idle
                if observer is not None:
                    observer.record_idle(idle)
                if idle < jump:
                    break
                continue

            transmitters = [
                index for index, node in enumerate(nodes) if node.ready
            ]
            success = len(transmitters) == 1
            if observer is not None:
                observer.record_transmission(transmitters, success)
            transmitter_set = frozenset(transmitters)
            for index, node in enumerate(nodes):
                if index in transmitter_set:
                    counters.per_node[index].attempts += 1
                    if success:
                        counters.per_node[index].successes += 1
                        node.on_success()
                    else:
                        counters.per_node[index].collisions += 1
                        node.on_collision()
                else:
                    node.tick(1)
            if success:
                counters.success_slots += 1
                counters.elapsed_us += times.success_us
            else:
                counters.collision_slots += 1
                counters.elapsed_us += times.collision_us
            slots_done += 1

        counters.check()
        return self._result(counters)

    def _result(self, counters: ChannelCounters) -> SimulationResult:
        return SimulationResult(
            counters=counters,
            windows=np.array([node.window for node in self.nodes], dtype=float),
            tau=counters.tau_estimates(),
            collision=counters.collision_estimates(),
            payoff_rates=counters.payoff_rates(
                self.params.gain, self.params.cost
            ),
            throughput=counters.throughput(self.params.payload_time_us),
        )
