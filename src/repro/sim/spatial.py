"""Spatial slot-synchronous multi-hop CSMA simulator (Section VI validation).

The multi-hop analysis needs two mechanisms beyond the single collision
domain: *carrier sensing by range* (a node freezes its backoff while any
in-range node transmits) and the *hidden-node problem* (a transmission can
die at the receiver because of an interferer the sender cannot hear).
This simulator models both directly under an RTS/CTS-style exchange:

* time advances in PHY slots of ``sigma`` microseconds;
* a node whose medium is idle decrements its backoff counter and, at
  zero, starts an *RTS phase* of ``Tc'/sigma`` slots towards a neighbour;
* the RTS succeeds iff no other node within the receiver's range is
  transmitting during any overlapping slot (simultaneous in-range
  starters model ordinary collisions; already-active out-of-range
  transmitters model hidden terminals);
* a winning RTS is followed by a protected *data phase* - every node in
  range of sender or receiver holds its NAV until the exchange ends, so
  the data phase is not corrupted (the standard idealised RTS/CTS
  behaviour; residual hidden-node loss lives in the RTS vulnerability
  window, which is exactly the paper's ``1 - p_hn`` degradation);
* a losing RTS costs ``e`` and doubles the window.

The per-node counters separate in-range (sender-visible) losses from
hidden losses so the experiments can estimate both ``p_i`` and ``p_hn``
and check the paper's key approximation that ``p_hn`` is insensitive to
the CW values.

The topology is a static snapshot; the multi-hop experiments draw
snapshots from the random-waypoint mobility model
(:mod:`repro.multihop.mobility`) and re-run the simulator per snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.typealiases import FloatArray, IntArray
from repro.errors import ParameterError, SimulationError
from repro.phy.parameters import AccessMode, PhyParameters
from repro.phy.timing import slot_times

__all__ = ["SpatialResult", "SpatialSimulator"]


@dataclass(frozen=True)
class SpatialResult:
    """Outcome of one spatial simulation run.

    Attributes
    ----------
    attempts, successes:
        Per-node RTS attempts and completed exchanges.
    inrange_losses:
        Per-node attempts lost to an interferer the *sender* could hear
        (ordinary contention, the sender-side ``p_i``).
    hidden_losses:
        Per-node attempts lost only to interferers the sender could not
        hear (the hidden-node degradation, ``1 - p_hn``).
    elapsed_us:
        Simulated time (slots times ``sigma``).
    payoff_rates:
        Per-node measured payoff per microsecond.
    """

    attempts: IntArray
    successes: IntArray
    inrange_losses: IntArray
    hidden_losses: IntArray
    elapsed_us: float
    payoff_rates: FloatArray

    def collision_probability(self) -> FloatArray:
        """Per-node sender-side collision estimate ``p_i`` (in-range)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            p = self.inrange_losses / self.attempts
        return np.nan_to_num(p)

    def hidden_degradation(self) -> FloatArray:
        """Per-node ``1 - p_hn`` estimate: hidden losses per attempt that
        survived in-range contention."""
        survived = self.attempts - self.inrange_losses
        with np.errstate(invalid="ignore", divide="ignore"):
            d = self.hidden_losses / survived
        return np.nan_to_num(d)

    @property
    def global_payoff(self) -> float:
        """Sum of per-node payoff rates (social welfare per microsecond)."""
        return float(self.payoff_rates.sum())


class SpatialSimulator:
    """Simulate saturated CSMA/CA nodes on a spatial topology.

    Parameters
    ----------
    positions:
        Node coordinates, shape ``(n, 2)`` in metres.
    tx_range:
        Transmission (and sensing) range in metres.
    windows:
        Per-node stage-0 contention windows.
    params:
        PHY/MAC constants.
    mode:
        Access mode (Section VI uses RTS/CTS; basic access maps the data
        frame into the vulnerability window instead).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        positions: FloatArray,
        tx_range: float,
        windows: Sequence[int],
        params: PhyParameters,
        mode: AccessMode = AccessMode.RTS_CTS,
        *,
        seed: Optional[int] = None,
    ) -> None:
        pos = np.asarray(positions, dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 2 or pos.shape[0] < 2:
            raise ParameterError(
                f"positions must have shape (n >= 2, 2), got {pos.shape!r}"
            )
        if tx_range <= 0:
            raise ParameterError(f"tx_range must be positive, got {tx_range!r}")
        window_arr = np.asarray([int(w) for w in windows], dtype=int)
        if window_arr.shape[0] != pos.shape[0]:
            raise ParameterError(
                f"need {pos.shape[0]} windows, got {window_arr.shape[0]}"
            )
        if np.any(window_arr < 1):
            raise ParameterError("all windows must be >= 1")

        self.positions = pos
        self.tx_range = float(tx_range)
        self.params = params
        self.mode = mode
        self.rng = np.random.default_rng(seed)
        self.n = pos.shape[0]

        diff = pos[:, None, :] - pos[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=2))
        self.adjacency = (dist <= tx_range) & ~np.eye(self.n, dtype=bool)

        times = slot_times(params, mode)
        sigma = times.idle_us
        # RTS (vulnerability) phase and protected data phase, in slots.
        self.rts_slots = max(1, int(round(times.collision_us / sigma)))
        self.data_slots = max(
            1, int(round((times.success_us - times.collision_us) / sigma))
        )
        self.sigma_us = sigma

        self.windows = window_arr
        self.stage = np.zeros(self.n, dtype=int)
        self.counter = self._draw_all()
        # Nodes without any neighbour have nobody to talk to.
        self.active = self.adjacency.any(axis=1)

    # ------------------------------------------------------------------
    def _stage_windows(self) -> IntArray:
        capped = np.minimum(self.stage, self.params.max_backoff_stage)
        return self.windows * (2**capped)

    def _draw_all(self) -> IntArray:
        return self.rng.integers(0, self._stage_windows())

    def _draw_one(self, index: int) -> int:
        capped = min(self.stage[index], self.params.max_backoff_stage)
        return int(self.rng.integers(0, self.windows[index] * (2**capped)))

    def set_windows(self, windows: Sequence[int]) -> None:
        """Reconfigure the stage-0 windows (new stage of the game)."""
        window_arr = np.asarray([int(w) for w in windows], dtype=int)
        if window_arr.shape[0] != self.n:
            raise ParameterError(f"need {self.n} windows")
        if np.any(window_arr < 1):
            raise ParameterError("all windows must be >= 1")
        self.windows = window_arr
        self.stage[:] = 0
        self.counter = self._draw_all()

    def neighbor_counts(self) -> IntArray:
        """Number of neighbours of each node."""
        return self.adjacency.sum(axis=1)

    # ------------------------------------------------------------------
    def run(self, n_slots: int) -> SpatialResult:
        """Simulate ``n_slots`` PHY slots; return per-node statistics."""
        if n_slots < 1:
            raise ParameterError(f"n_slots must be >= 1, got {n_slots!r}")
        n = self.n
        adjacency = self.adjacency
        attempts = np.zeros(n, dtype=np.int64)
        successes = np.zeros(n, dtype=np.int64)
        inrange_losses = np.zeros(n, dtype=np.int64)
        hidden_losses = np.zeros(n, dtype=np.int64)

        transmitting = np.zeros(n, dtype=bool)
        busy_until = np.zeros(n, dtype=np.int64)
        nav_until = np.zeros(n, dtype=np.int64)

        # Per-node in-flight RTS attempt bookkeeping.
        rts_end = np.full(n, -1, dtype=np.int64)
        rts_receiver = np.full(n, -1, dtype=np.int64)
        rts_hit_inrange = np.zeros(n, dtype=bool)
        rts_hit_hidden = np.zeros(n, dtype=bool)
        data_end = np.full(n, -1, dtype=np.int64)

        neighbor_lists = [np.flatnonzero(adjacency[i]) for i in range(n)]

        for t in range(n_slots):
            # 1. Finish transmissions ending at t.
            ending = np.flatnonzero(transmitting & (busy_until <= t))
            for i in ending:
                transmitting[i] = False
                if data_end[i] == busy_until[i] and data_end[i] <= t:
                    successes[i] += 1
                    self.stage[i] = 0
                    self.counter[i] = self._draw_one(i)
                    data_end[i] = -1
                elif rts_end[i] == busy_until[i] and rts_end[i] <= t:
                    receiver = int(rts_receiver[i])
                    interferers = transmitting & adjacency[receiver]
                    interferers[i] = False
                    if interferers.any():
                        hearable = interferers & adjacency[i]
                        if hearable.any():
                            rts_hit_inrange[i] = True
                        else:
                            rts_hit_hidden[i] = True
                    if rts_hit_inrange[i]:
                        inrange_losses[i] += 1
                    elif rts_hit_hidden[i]:
                        hidden_losses[i] += 1
                    if rts_hit_inrange[i] or rts_hit_hidden[i]:
                        self.stage[i] = min(
                            self.stage[i] + 1, self.params.max_backoff_stage
                        )
                        self.counter[i] = self._draw_one(i)
                    else:
                        # Protected data phase; NAV everyone who can hear
                        # sender or receiver.
                        transmitting[i] = True
                        busy_until[i] = t + self.data_slots
                        data_end[i] = busy_until[i]
                        protected = adjacency[i] | adjacency[receiver]
                        nav_until[protected] = np.maximum(
                            nav_until[protected], t + self.data_slots
                        )
                    rts_end[i] = -1
                    rts_receiver[i] = -1

            # 2. Medium state per node.
            medium_busy = adjacency @ transmitting  # neighbour transmitting
            can_count = (
                self.active
                & ~transmitting
                & ~medium_busy
                & (nav_until <= t)
            )

            # 3. Starters: counter already zero and medium idle.
            starters = np.flatnonzero(can_count & (self.counter == 0))
            for i in starters:
                neighbors = neighbor_lists[i]
                receiver = int(neighbors[self.rng.integers(len(neighbors))])
                attempts[i] += 1
                transmitting[i] = True
                busy_until[i] = t + self.rts_slots
                rts_end[i] = busy_until[i]
                rts_receiver[i] = receiver
                rts_hit_inrange[i] = False
                rts_hit_hidden[i] = False

            # 4. Mid-flight interference checks for ongoing RTS phases.
            ongoing = np.flatnonzero(transmitting & (rts_end > t))
            if ongoing.size:
                for i in ongoing:
                    receiver = int(rts_receiver[i])
                    interferers = transmitting & adjacency[receiver]
                    interferers[i] = False
                    if interferers.any():
                        hearable = interferers & adjacency[i]
                        if hearable.any():
                            rts_hit_inrange[i] = True
                        else:
                            rts_hit_hidden[i] = True

            # 5. Countdown for idle nodes (starters excluded: counter 0).
            countdown = can_count & (self.counter > 0)
            self.counter[countdown] -= 1

        elapsed_us = n_slots * self.sigma_us
        if elapsed_us <= 0:  # pragma: no cover - n_slots >= 1 guarantees > 0
            raise SimulationError("no simulated time elapsed")
        payoff = (
            successes * self.params.gain - attempts * self.params.cost
        ) / elapsed_us
        return SpatialResult(
            attempts=attempts,
            successes=successes,
            inrange_losses=inrange_losses,
            hidden_losses=hidden_losses,
            elapsed_us=elapsed_us,
            payoff_rates=payoff,
        )
