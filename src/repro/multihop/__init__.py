"""Multi-hop extension of the MAC game (paper Section VI).

In a multi-hop mobile ad hoc network each node only contends with its
neighbourhood, hidden nodes degrade delivery by a factor ``p_hn``, and no
common efficient NE exists.  The paper shows that when every node opens
with the efficient window of its *local* single-hop game and then follows
TFT, the network converges to ``W_m = min_i W_i``, which is a Nash
equilibrium of the multi-hop game ``G'`` (Theorem 3) and is quasi-optimal.

Modules:

* :mod:`repro.multihop.topology` - geometric topologies and neighbourhoods;
* :mod:`repro.multihop.mobility` - the random waypoint mobility model;
* :mod:`repro.multihop.hidden` - hidden-node degradation estimation;
* :mod:`repro.multihop.localgame` - per-node local single-hop games;
* :mod:`repro.multihop.game` - the multi-hop game ``G'``: TFT convergence,
  the Theorem 3 equilibrium and the quasi-optimality metrics of
  Section VII.B.
"""

from repro.multihop.topology import GeometricTopology, random_topology
from repro.multihop.mobility import RandomWaypointModel, WaypointState
from repro.multihop.hidden import (
    analytic_hidden_degradation,
    hidden_sets,
)
from repro.multihop.localgame import LocalGameResult, local_efficient_windows
from repro.multihop.game import (
    MultihopEquilibrium,
    MultihopGame,
    QuasiOptimalityReport,
)
from repro.multihop.dynamics import (
    EpochRecord,
    MobilityDynamics,
    MobilityTrace,
)

__all__ = [
    "EpochRecord",
    "MobilityDynamics",
    "MobilityTrace",
    "GeometricTopology",
    "LocalGameResult",
    "MultihopEquilibrium",
    "MultihopGame",
    "QuasiOptimalityReport",
    "RandomWaypointModel",
    "WaypointState",
    "analytic_hidden_degradation",
    "hidden_sets",
    "local_efficient_windows",
    "random_topology",
]
