"""Geometric topologies for multi-hop networks (Section VI/VII.B).

A topology is a set of node positions in a rectangular area plus a common
transmission range; two nodes are neighbours when within range.  The
paper's scenario is 100 nodes in a 1000 m x 1000 m area with a 250 m
range.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List

import networkx as nx
import numpy as np

from repro.errors import TopologyError
from repro.rng import RngLike, resolve_rng

__all__ = ["GeometricTopology", "random_topology"]

#: Fixed fallback seed for :func:`random_topology` when no generator is
#: supplied (determinism guarantee; see docs/static_analysis.md).
DEFAULT_TOPOLOGY_SEED = 20070601


@dataclass(frozen=True)
class GeometricTopology:
    """An immutable geometric snapshot of a multi-hop network.

    Attributes
    ----------
    positions:
        Node coordinates, shape ``(n, 2)`` in metres.
    tx_range:
        Transmission/sensing range in metres.
    width, height:
        Dimensions of the deployment area (used for validation and
        mobility bounds).
    """

    positions: np.ndarray
    tx_range: float
    width: float
    height: float

    def __post_init__(self) -> None:
        pos = np.asarray(self.positions, dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 2 or pos.shape[0] < 2:
            raise TopologyError(
                f"positions must have shape (n >= 2, 2), got {pos.shape!r}"
            )
        if self.tx_range <= 0:
            raise TopologyError(
                f"tx_range must be positive, got {self.tx_range!r}"
            )
        if self.width <= 0 or self.height <= 0:
            raise TopologyError("area dimensions must be positive")
        if np.any(pos < -1e-9) or np.any(
            pos > np.array([self.width, self.height]) + 1e-9
        ):
            raise TopologyError("some positions fall outside the area")
        object.__setattr__(self, "positions", pos)

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return int(self.positions.shape[0])

    @cached_property
    def adjacency(self) -> np.ndarray:
        """Boolean adjacency matrix (no self-loops)."""
        diff = self.positions[:, None, :] - self.positions[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=2))
        return (dist <= self.tx_range) & ~np.eye(self.n_nodes, dtype=bool)

    def neighbors(self, node: int) -> np.ndarray:
        """Indices of the neighbours of ``node``."""
        self._check_node(node)
        return np.flatnonzero(self.adjacency[node])

    def degree(self, node: int) -> int:
        """Number of neighbours of ``node``."""
        return int(self.adjacency[node].sum())

    def degrees(self) -> np.ndarray:
        """Neighbour count of every node."""
        return self.adjacency.sum(axis=1)

    def local_size(self, node: int) -> int:
        """Size of the local contention domain, ``deg(node) + 1``.

        This is the ``n`` of the node's local single-hop game (the node
        plus its neighbours, equation (4) of the paper).
        """
        return self.degree(node) + 1

    @cached_property
    def graph(self) -> nx.Graph:
        """The topology as a :class:`networkx.Graph` (for path queries)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n_nodes))
        rows, cols = np.nonzero(np.triu(self.adjacency))
        graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
        return graph

    def is_connected(self) -> bool:
        """Whether the snapshot forms one connected component.

        Section VI assumes a connected network (otherwise TFT converges
        per component, not globally).
        """
        return nx.is_connected(self.graph)

    def components(self) -> List[set]:
        """Connected components as sets of node indices."""
        return [set(c) for c in nx.connected_components(self.graph)]

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise TopologyError(
                f"node {node!r} out of range [0, {self.n_nodes})"
            )


def random_topology(
    n_nodes: int = 100,
    *,
    width: float = 1000.0,
    height: float = 1000.0,
    tx_range: float = 250.0,
    rng: RngLike = None,
    require_connected: bool = False,
    max_retries: int = 100,
) -> GeometricTopology:
    """Sample a uniform random topology (the paper's VII.B scenario).

    Parameters
    ----------
    n_nodes, width, height, tx_range:
        Scenario constants; defaults match the paper (100 nodes,
        1000 m x 1000 m, 250 m range).
    rng:
        Random generator, seed or ``SeedSequence``.  When omitted the
        sample is still deterministic: it derives from the module's
        fixed :data:`DEFAULT_TOPOLOGY_SEED`.
    require_connected:
        Resample until the snapshot is connected (the paper assumes a
        connected network).
    max_retries:
        Resampling budget when ``require_connected`` is set.

    Returns
    -------
    GeometricTopology
    """
    if n_nodes < 2:
        raise TopologyError(f"n_nodes must be >= 2, got {n_nodes!r}")
    generator = resolve_rng(rng, default_seed=DEFAULT_TOPOLOGY_SEED)
    for _ in range(max_retries):
        positions = generator.uniform(
            low=[0.0, 0.0], high=[width, height], size=(n_nodes, 2)
        )
        topology = GeometricTopology(
            positions=positions, tx_range=tx_range, width=width, height=height
        )
        if not require_connected or topology.is_connected():
            return topology
    raise TopologyError(
        f"could not sample a connected topology in {max_retries} tries; "
        "increase tx_range or the retry budget"
    )
