"""Hidden-node degradation factor ``p_hn`` (paper Section VI.A).

The multi-hop utility is ``u_i = tau_i ((1 - p_i) p_hn_i g - e) / Tslot``:
of the transmissions that survive sender-side contention, a fraction
``1 - p_hn_i`` still dies at the receiver because of interferers the
sender cannot hear.  The paper's key approximation - validated by its
simulations and by ours - is that ``p_hn_i`` is roughly *independent of
the CW values* when the network is large and windows are not tiny, which
is what lets each node optimise the single-hop objective locally.

This module provides:

* :func:`hidden_sets` - the structural hidden sets
  ``H(i, r) = N(r) \\ (N(i) u {i})`` per (sender, receiver) pair;
* :func:`analytic_hidden_degradation` - a closed-form estimate of
  ``p_hn_i`` from the hidden sets and the neighbours' transmission
  probabilities, using the classic vulnerability-window argument.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import ParameterError, TopologyError
from repro.multihop.topology import GeometricTopology

__all__ = ["analytic_hidden_degradation", "hidden_sets"]


def hidden_sets(
    topology: GeometricTopology, sender: int
) -> Dict[int, np.ndarray]:
    """Hidden nodes per candidate receiver of ``sender``.

    For each neighbour ``r`` of ``sender`` the hidden set is
    ``N(r) \\ (N(sender) u {sender})``: nodes that can corrupt reception
    at ``r`` without the sender being able to hear them.

    Returns
    -------
    dict
        Mapping receiver index -> array of hidden node indices.
    """
    neighbors = topology.neighbors(sender)
    if neighbors.size == 0:
        raise TopologyError(f"node {sender} has no neighbours")
    sender_zone = set(neighbors.tolist()) | {sender}
    result: Dict[int, np.ndarray] = {}
    for receiver in neighbors:
        receiver_neighbors = set(topology.neighbors(int(receiver)).tolist())
        hidden = sorted(receiver_neighbors - sender_zone)
        result[int(receiver)] = np.asarray(hidden, dtype=int)
    return result


def analytic_hidden_degradation(
    topology: GeometricTopology,
    sender: int,
    tau: Sequence[float],
    *,
    vulnerability_slots: float = 2.0,
    receiver: Optional[int] = None,
) -> float:
    """Closed-form estimate of ``p_hn`` for one sender.

    A transmission towards receiver ``r`` survives the hidden nodes when
    none of them transmits during the vulnerability window (roughly twice
    the unprotected frame time, expressed here in virtual slots)::

        p_hn(i -> r) ~= prod_{h in H(i, r)} (1 - tau_h)^{V}

    With ``receiver=None`` the estimate averages over the sender's
    neighbours (uniform receiver choice, matching the simulator).

    Parameters
    ----------
    topology:
        The network snapshot.
    sender:
        Index of the transmitting node.
    tau:
        Per-node transmission probabilities (e.g. from the local
        fixed-point solutions).
    vulnerability_slots:
        ``V``: length of the vulnerability window in virtual slots; 2 is
        the classic unslotted-exposure value for RTS-sized frames.
    receiver:
        Specific receiver, or ``None`` to average over neighbours.

    Returns
    -------
    float
        Estimated ``p_hn`` in ``(0, 1]``.
    """
    tau_arr = np.asarray(tau, dtype=float)
    if tau_arr.shape[0] != topology.n_nodes:
        raise ParameterError(
            f"tau must have {topology.n_nodes} entries, got "
            f"{tau_arr.shape[0]}"
        )
    if np.any(tau_arr < 0) or np.any(tau_arr >= 1):
        raise ParameterError("tau values must lie in [0, 1)")
    if vulnerability_slots <= 0:
        raise ParameterError(
            f"vulnerability_slots must be positive, got "
            f"{vulnerability_slots!r}"
        )
    sets = hidden_sets(topology, sender)
    if receiver is not None:
        if receiver not in sets:
            raise TopologyError(
                f"{receiver!r} is not a neighbour of {sender!r}"
            )
        selected = {receiver: sets[receiver]}
    else:
        selected = sets

    survival = []
    for hidden in selected.values():
        if hidden.size == 0:
            survival.append(1.0)
            continue
        per_slot = float(np.prod(1.0 - tau_arr[hidden]))
        survival.append(per_slot**vulnerability_slots)
    return float(np.mean(survival))
