"""Random waypoint mobility model (paper Section VII.B).

Each node picks a uniform destination in the area and a uniform speed in
``[min_speed, max_speed]``, moves there in a straight line, optionally
pauses, then repeats.  The paper's scenario: 100 nodes, 1000 m x 1000 m,
speeds drawn from ``[0, 5] m/s``, simulated for 1000 s.

The implementation advances all nodes with vectorised numpy steps and can
emit topology snapshots for the game/simulation layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ParameterError
from repro.multihop.topology import GeometricTopology
from repro.rng import RngLike, resolve_rng

__all__ = ["RandomWaypointModel", "WaypointState"]

_MIN_POSITIVE_SPEED = 1e-9

#: Fixed fallback seed when no generator is supplied (determinism
#: guarantee; see docs/static_analysis.md).
DEFAULT_MOBILITY_SEED = 20070602


@dataclass
class WaypointState:
    """Mutable per-node mobility state.

    Attributes
    ----------
    positions:
        Current coordinates, shape ``(n, 2)``.
    destinations:
        Current waypoints, shape ``(n, 2)``.
    speeds:
        Current speeds in m/s (0 while pausing).
    pause_left:
        Remaining pause time per node, in seconds.
    """

    positions: np.ndarray
    destinations: np.ndarray
    speeds: np.ndarray
    pause_left: np.ndarray


class RandomWaypointModel:
    """Random waypoint mobility over a rectangular area.

    Parameters
    ----------
    n_nodes:
        Number of mobile nodes.
    width, height:
        Area dimensions in metres.
    min_speed, max_speed:
        Speed range in m/s.  Waypoint draws with ``min_speed = 0`` get a
        tiny positive floor so nodes do not stall forever (the well-known
        random-waypoint pathology).
    pause_time:
        Pause at each waypoint, in seconds.
    rng:
        Random generator, seed or ``SeedSequence``; omitted means a
        deterministic fallback seeded with
        :data:`DEFAULT_MOBILITY_SEED`.

    Examples
    --------
    >>> model = RandomWaypointModel(10, rng=np.random.default_rng(7))
    >>> state = model.state
    >>> model.step(1.0)
    >>> bool((model.state.positions <= 1000.0).all())
    True
    """

    def __init__(
        self,
        n_nodes: int = 100,
        *,
        width: float = 1000.0,
        height: float = 1000.0,
        min_speed: float = 0.0,
        max_speed: float = 5.0,
        pause_time: float = 0.0,
        rng: RngLike = None,
    ) -> None:
        if n_nodes < 1:
            raise ParameterError(f"n_nodes must be >= 1, got {n_nodes!r}")
        if width <= 0 or height <= 0:
            raise ParameterError("area dimensions must be positive")
        if min_speed < 0 or max_speed <= 0 or max_speed < min_speed:
            raise ParameterError(
                f"invalid speed range [{min_speed!r}, {max_speed!r}]"
            )
        if pause_time < 0:
            raise ParameterError(
                f"pause_time must be >= 0, got {pause_time!r}"
            )
        self.n_nodes = n_nodes
        self.width = width
        self.height = height
        self.min_speed = max(min_speed, _MIN_POSITIVE_SPEED)
        self.max_speed = max_speed
        self.pause_time = pause_time
        self.rng = resolve_rng(rng, default_seed=DEFAULT_MOBILITY_SEED)

        positions = self._uniform_points(n_nodes)
        self.state = WaypointState(
            positions=positions,
            destinations=self._uniform_points(n_nodes),
            speeds=self._uniform_speeds(n_nodes),
            pause_left=np.zeros(n_nodes),
        )

    # ------------------------------------------------------------------
    def _uniform_points(self, count: int) -> np.ndarray:
        return self.rng.uniform(
            low=[0.0, 0.0], high=[self.width, self.height], size=(count, 2)
        )

    def _uniform_speeds(self, count: int) -> np.ndarray:
        return self.rng.uniform(self.min_speed, self.max_speed, size=count)

    # ------------------------------------------------------------------
    def step(self, dt: float) -> None:
        """Advance every node by ``dt`` seconds.

        Nodes that reach their waypoint inside the step pause (if
        configured) and then draw a fresh waypoint and speed.  Movement
        within one step is linear; ``dt`` should be small relative to
        typical leg durations for faithful traces.
        """
        if dt <= 0:
            raise ParameterError(f"dt must be positive, got {dt!r}")
        state = self.state

        pausing = state.pause_left > 0
        state.pause_left[pausing] = np.maximum(
            state.pause_left[pausing] - dt, 0.0
        )

        moving = ~pausing
        if np.any(moving):
            vectors = state.destinations[moving] - state.positions[moving]
            distances = np.sqrt((vectors**2).sum(axis=1))
            travel = state.speeds[moving] * dt
            arriving = travel >= distances
            fraction = np.where(
                distances > 0, np.minimum(travel / np.maximum(distances, 1e-12), 1.0), 1.0
            )
            state.positions[moving] += vectors * fraction[:, None]

            arrived_indices = np.flatnonzero(moving)[arriving]
            if arrived_indices.size:
                state.positions[arrived_indices] = state.destinations[
                    arrived_indices
                ]
                state.destinations[arrived_indices] = self._uniform_points(
                    arrived_indices.size
                )
                state.speeds[arrived_indices] = self._uniform_speeds(
                    arrived_indices.size
                )
                state.pause_left[arrived_indices] = self.pause_time

    def snapshot(self, tx_range: float) -> GeometricTopology:
        """Freeze the current positions into a topology."""
        return GeometricTopology(
            positions=self.state.positions.copy(),
            tx_range=tx_range,
            width=self.width,
            height=self.height,
        )

    def snapshots(
        self, tx_range: float, *, interval: float, count: int
    ) -> Iterator[GeometricTopology]:
        """Yield ``count`` topology snapshots, ``interval`` seconds apart.

        The first snapshot is taken after one interval, not at time 0.
        """
        if count < 1:
            raise ParameterError(f"count must be >= 1, got {count!r}")
        for _ in range(count):
            self.step(interval)
            yield self.snapshot(tx_range)
