"""Multi-hop TFT under mobility (the *mobile* in "mobile ad hoc").

Section VI's network is mobile, but the paper analyses convergence on a
connected snapshot.  This module plays the game *across* snapshots and
exposes a real property of the paper's TFT worth knowing:

* **Sticky TFT (the paper's literal rule).**  ``W_i^k = min_j W_j^{k-1}``
  never raises a window, so the network-wide minimum is absorbing over
  time: once a low-window node has passed through a neighbourhood, its
  window stays behind even after the node moves away, and over many
  epochs the whole network ratchets down to the *historical* minimum.
* **Re-opening TFT.**  If nodes re-open each epoch at the efficient
  window of their *current* local game (a stage re-initialisation in the
  spirit of the paper's "initial value" rule, or of GTFT forgiveness),
  every epoch converges to its own snapshot minimum and the network
  tracks the topology instead of its history.

The contrast quantifies why a deployed protocol needs a forgiveness /
re-initialisation mechanism on top of the bare TFT rule the analysis
uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ParameterError
from repro.multihop.game import MultihopGame
from repro.multihop.localgame import local_efficient_windows
from repro.multihop.mobility import RandomWaypointModel
from repro.phy.parameters import AccessMode, PhyParameters
from repro.rng import RngLike, resolve_rng

__all__ = ["EpochRecord", "MobilityDynamics", "MobilityTrace"]

#: Fixed fallback seed when no generator is supplied (determinism
#: guarantee; see docs/static_analysis.md).
DEFAULT_DYNAMICS_SEED = 20070603


@dataclass(frozen=True)
class EpochRecord:
    """One mobility epoch of the dynamics.

    Attributes
    ----------
    epoch:
        Epoch index.
    snapshot_minimum:
        ``min_i W_i`` of the *current* snapshot's local games - what the
        epoch would converge to in isolation.
    sticky_window:
        Converged common window under sticky TFT (carries history).
    reopening_window:
        Converged common window when nodes re-open at their current
        local optima each epoch.
    mean_degree:
        Mean neighbour count of the snapshot.
    """

    epoch: int
    snapshot_minimum: int
    sticky_window: int
    reopening_window: int
    mean_degree: float


@dataclass
class MobilityTrace:
    """All epochs of one dynamics run."""

    records: List[EpochRecord]

    def sticky_windows(self) -> List[int]:
        """Converged sticky-TFT window per epoch."""
        return [record.sticky_window for record in self.records]

    def reopening_windows(self) -> List[int]:
        """Converged re-opening-TFT window per epoch."""
        return [record.reopening_window for record in self.records]

    def snapshot_minima(self) -> List[int]:
        """Each snapshot's own local-game minimum."""
        return [record.snapshot_minimum for record in self.records]


class MobilityDynamics:
    """Play multi-hop TFT across random-waypoint epochs.

    Parameters
    ----------
    params:
        PHY/MAC constants.
    n_nodes, width, height, tx_range, max_speed:
        The mobility scenario (paper defaults).
    mode:
        Access mode (Section VI uses RTS/CTS).
    rng:
        Random generator, seed or ``SeedSequence`` for the mobility
        model; omitted means a deterministic fallback seeded with
        :data:`DEFAULT_DYNAMICS_SEED`.
    """

    def __init__(
        self,
        params: PhyParameters,
        *,
        n_nodes: int = 100,
        width: float = 1000.0,
        height: float = 1000.0,
        tx_range: float = 250.0,
        max_speed: float = 5.0,
        mode: AccessMode = AccessMode.RTS_CTS,
        rng: RngLike = None,
    ) -> None:
        self.params = params
        self.tx_range = tx_range
        self.mode = mode
        self.model = RandomWaypointModel(
            n_nodes,
            width=width,
            height=height,
            max_speed=max_speed,
            rng=resolve_rng(rng, default_seed=DEFAULT_DYNAMICS_SEED),
        )
        self._sticky: Optional[np.ndarray] = None

    def run(
        self, n_epochs: int, *, epoch_seconds: float = 100.0
    ) -> MobilityTrace:
        """Advance mobility and converge TFT per epoch.

        Parameters
        ----------
        n_epochs:
            Number of mobility epochs to play.
        epoch_seconds:
            Mobility time between snapshots.

        Returns
        -------
        MobilityTrace
        """
        if n_epochs < 1:
            raise ParameterError(f"n_epochs must be >= 1, got {n_epochs!r}")
        records: List[EpochRecord] = []
        for epoch, topology in enumerate(
            self.model.snapshots(
                self.tx_range, interval=epoch_seconds, count=n_epochs
            )
        ):
            local = local_efficient_windows(topology, self.params, self.mode)
            game = MultihopGame(topology, self.params, self.mode)
            equilibrium = game.solve()
            reopening = equilibrium.converged_window

            if self._sticky is None:
                self._sticky = local.windows.astype(int).copy()
            else:
                # Sticky TFT never raises: keep the historical windows
                # and let the new neighbourhood minima flood.
                self._sticky = np.minimum(
                    self._sticky, local.windows.astype(int)
                )
            sticky = self._flood(topology, self._sticky)
            self._sticky = sticky

            records.append(
                EpochRecord(
                    epoch=epoch,
                    snapshot_minimum=int(local.minimum),
                    sticky_window=int(
                        sticky[topology.degrees() > 0].min()
                        if (topology.degrees() > 0).any()
                        else sticky.min()
                    ),
                    reopening_window=reopening,
                    mean_degree=float(topology.degrees().mean()),
                )
            )
        return MobilityTrace(records=records)

    @staticmethod
    def _flood(topology, windows: np.ndarray) -> np.ndarray:
        """Run the TFT minimum flood to convergence on one snapshot."""
        adjacency = topology.adjacency
        current = windows.astype(int).copy()
        for _ in range(topology.n_nodes + 1):
            nxt = current.copy()
            for node in range(topology.n_nodes):
                neighborhood = np.flatnonzero(adjacency[node])
                if neighborhood.size:
                    nxt[node] = min(
                        int(current[node]), int(current[neighborhood].min())
                    )
            if np.array_equal(nxt, current):
                return current
            current = nxt
        return current
