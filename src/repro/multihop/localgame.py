"""Per-node local single-hop games (paper Section VI.B).

In the multi-hop game each node cannot reach a network-wide efficient NE,
so it falls back to local information: node ``i`` plays the single-hop
game ``G`` whose players are itself and its neighbours, and opens with the
efficient window ``W_i`` of that local game.  Under the paper's
approximations (``p_hn`` independent of CW, ``g >> e``) this maximises its
local utility, and TFT then drags everyone to
``W_m = min_i W_i`` (Theorem 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import TopologyError
from repro.game.equilibrium import efficient_window
from repro.multihop.topology import GeometricTopology
from repro.phy.parameters import AccessMode, PhyParameters
from repro.phy.timing import slot_times

__all__ = ["LocalGameResult", "local_efficient_windows"]


@dataclass(frozen=True)
class LocalGameResult:
    """Local efficient windows of every node in a snapshot.

    Attributes
    ----------
    windows:
        ``W_i`` per node: the efficient NE window of its local single-hop
        game (nodes with no neighbour get the largest local window in the
        snapshot - they do not contend and never drag anyone down).
    local_sizes:
        Size ``deg(i) + 1`` of each node's local contention domain.
    minimum:
        ``W_m = min_i W_i``, the window TFT converges to (over contending
        nodes).
    """

    windows: np.ndarray
    local_sizes: np.ndarray
    minimum: int

    @property
    def argmin(self) -> int:
        """Index of (one of) the node(s) with the smallest local window."""
        return int(np.argmin(self.windows))


def local_efficient_windows(
    topology: GeometricTopology,
    params: PhyParameters,
    mode: AccessMode = AccessMode.RTS_CTS,
    *,
    ignore_cost: bool = True,
) -> LocalGameResult:
    """Compute every node's local efficient window ``W_i``.

    The per-size efficient windows are cached, so a 100-node snapshot
    costs one equilibrium computation per *distinct* neighbourhood size,
    not per node.

    Parameters
    ----------
    topology:
        The network snapshot.
    params, mode:
        Model constants; the paper's Section VI operates under RTS/CTS.
    ignore_cost:
        The paper's ``g >> e`` approximation (default on, as in
        Section VI.B).

    Returns
    -------
    LocalGameResult
    """
    times = slot_times(params, mode)
    sizes = topology.degrees() + 1
    cache: Dict[int, int] = {}
    windows = np.empty(topology.n_nodes, dtype=int)
    isolated = []
    for node in range(topology.n_nodes):
        size = int(sizes[node])
        if size < 2:
            isolated.append(node)
            continue
        if size not in cache:
            cache[size] = efficient_window(
                size, params, times, ignore_cost=ignore_cost
            )
        windows[node] = cache[size]
    contending = [n for n in range(topology.n_nodes) if n not in isolated]
    if not contending:
        raise TopologyError("topology has no contending nodes")
    fill = int(windows[contending].max())
    for node in isolated:
        windows[node] = fill
    minimum = int(windows[contending].min())
    return LocalGameResult(
        windows=windows,
        local_sizes=np.asarray(sizes, dtype=int),
        minimum=minimum,
    )
