"""The multi-hop MAC game ``G'`` (paper Section VI, Theorem 3).

Players only contend with their neighbourhoods, so the game has no common
efficient NE.  The paper's construction:

1. every node opens with the efficient window ``W_i`` of its local
   single-hop game (:mod:`repro.multihop.localgame`);
2. TFT over neighbourhoods - each stage every node drops to the minimum
   window it observed around itself - floods the global minimum through
   the network, converging in at most ``diameter`` stages;
3. the converged profile ``(W_m, ..., W_m)``, ``W_m = min_i W_i``, is a
   NE of ``G'`` (Theorem 3): nobody gains by raising (TFT drags them
   back) and nobody gains by lowering (every ``U_i`` is increasing below
   its own local optimum ``W_i >= W_m``);
4. the NE is *quasi-optimal*: each node keeps >= ~96% of its maximal
   local payoff and the global payoff is within a few percent of its
   maximum (Section VII.B).

The class below implements each step analytically (per-node utilities use
each node's local contention-domain size and optional hidden-node factor);
the spatial simulator (:mod:`repro.sim.spatial`) cross-validates the
quasi-optimality numbers mechanistically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.contracts import check_probability, checks_enabled
from repro.errors import ParameterError, TopologyError
from repro.bianchi.batched import solve_symmetric_grid
from repro.bianchi.fixedpoint import solve_symmetric
from repro.multihop.hidden import analytic_hidden_degradation
from repro.multihop.localgame import LocalGameResult, local_efficient_windows
from repro.multihop.topology import GeometricTopology
from repro.phy.parameters import AccessMode, PhyParameters
from repro.phy.timing import SlotTimes, slot_times

__all__ = ["MultihopEquilibrium", "MultihopGame", "QuasiOptimalityReport"]


@dataclass(frozen=True)
class MultihopEquilibrium:
    """The Theorem 3 equilibrium of one snapshot.

    Attributes
    ----------
    local:
        Per-node local-game results (``W_i`` and domain sizes).
    converged_window:
        ``W_m = min_i W_i``.
    convergence_stages:
        Stages TFT needed to flood ``W_m`` through the snapshot.
    window_history:
        Stage-by-stage window profiles of the TFT flood, shape
        ``(stages + 1, n)``.
    """

    local: LocalGameResult
    converged_window: int
    convergence_stages: int
    window_history: np.ndarray


@dataclass(frozen=True)
class QuasiOptimalityReport:
    """Section VII.B quasi-optimality metrics of the converged NE.

    Attributes
    ----------
    grid:
        The common-window grid swept.
    converged_window:
        ``W_m``, the window under test.
    per_node_fraction:
        For every node: utility at ``W_m`` over its own maximum across
        the grid (the paper reports a minimum of ~0.96).
    global_fraction:
        Global payoff at ``W_m`` over the grid maximum (paper: ~0.97).
    global_curve:
        Global payoff per grid window.
    """

    grid: np.ndarray
    converged_window: int
    per_node_fraction: np.ndarray
    global_fraction: float
    global_curve: np.ndarray

    @property
    def worst_node_fraction(self) -> float:
        """The worst per-node retention (paper quotes >= 96%)."""
        return float(self.per_node_fraction.min())


class MultihopGame:
    """The multi-hop game ``G'`` on one topology snapshot.

    Parameters
    ----------
    topology:
        The network snapshot (must have at least one contending edge).
    params:
        PHY/MAC constants.
    mode:
        Access mode; the paper's Section VI uses RTS/CTS.
    hidden_factor:
        Handling of ``p_hn``: ``"none"`` (factor 1, the paper's ``g >> e``
        + CW-independence reduction), ``"analytic"`` (the closed-form
        vulnerability-window estimate, still CW-independent by
        construction at the converged point).
    """

    def __init__(
        self,
        topology: GeometricTopology,
        params: PhyParameters,
        mode: AccessMode = AccessMode.RTS_CTS,
        *,
        hidden_factor: str = "none",
    ) -> None:
        if hidden_factor not in ("none", "analytic"):
            raise ParameterError(
                f"hidden_factor must be 'none' or 'analytic', got "
                f"{hidden_factor!r}"
            )
        self.topology = topology
        self.params = params
        self.mode = mode
        self.times: SlotTimes = slot_times(params, mode)
        self.hidden_factor = hidden_factor
        self._utility_cache: Dict[tuple, float] = {}
        self._hidden_cache: Dict[int, float] = {}
        self._hidden_tau: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Step 1-2: local games and TFT flooding
    # ------------------------------------------------------------------
    def solve(self, *, max_stages: int = 1_000) -> MultihopEquilibrium:
        """Run the Section VI construction: local openings + TFT flood.

        Returns
        -------
        MultihopEquilibrium

        Raises
        ------
        TopologyError
            If TFT does not converge within ``max_stages`` (cannot happen
            on a finite graph unless ``max_stages`` is tiny).
        """
        local = local_efficient_windows(
            self.topology, self.params, self.mode
        )
        adjacency = self.topology.adjacency
        history = [local.windows.astype(int).copy()]
        current = history[0]
        for stage in range(1, max_stages + 1):
            nxt = current.copy()
            for node in range(self.topology.n_nodes):
                neighborhood = np.flatnonzero(adjacency[node])
                if neighborhood.size == 0:
                    continue
                observed = current[neighborhood].min()
                nxt[node] = min(int(current[node]), int(observed))
            history.append(nxt)
            if np.array_equal(nxt, current):
                return MultihopEquilibrium(
                    local=local,
                    converged_window=int(local.minimum),
                    convergence_stages=stage - 1,
                    window_history=np.stack(history),
                )
            current = nxt
        raise TopologyError(
            f"TFT flood did not converge within {max_stages} stages"
        )

    # ------------------------------------------------------------------
    # Per-node analytic utilities
    # ------------------------------------------------------------------
    def _local_fixed_point_taus(self) -> np.ndarray:
        """Every node's local symmetric ``tau``, batched per domain size.

        Nodes sharing a contention-domain size solve as one window grid;
        the result is cached because every hidden-node factor consumes
        the same vector.
        """
        if self._hidden_tau is None:
            # Estimate with every node at its local fixed point for the
            # converged window class; the paper's approximation makes the
            # result insensitive to the exact windows used here.
            local = local_efficient_windows(
                self.topology, self.params, self.mode
            )
            sizes = np.maximum(2, local.local_sizes.astype(int))
            windows = local.windows.astype(int).astype(float)
            tau = np.empty(self.topology.n_nodes)
            for size in np.unique(sizes):
                mask = sizes == size
                unique_w, inverse = np.unique(windows[mask], return_inverse=True)
                grid = solve_symmetric_grid(
                    unique_w, int(size), self.params.max_backoff_stage
                )
                tau[mask] = grid.tau[inverse]
            self._hidden_tau = tau
        return self._hidden_tau

    def _hidden(self, node: int) -> float:
        if self.hidden_factor == "none":
            return 1.0
        cached = self._hidden_cache.get(node)
        if cached is None:
            tau = self._local_fixed_point_taus()
            cached = analytic_hidden_degradation(self.topology, node, tau)
            self._hidden_cache[node] = cached
        return cached

    def local_utility(self, node: int, window: int) -> float:
        """Node ``node``'s utility rate when its whole neighbourhood uses
        ``window`` (equation of Section VI.A).

        ``u_i = tau ((1 - p) p_hn g - e) / Tslot`` with ``tau``/``p`` from
        the symmetric fixed point of the node's local contention domain.
        Isolated nodes have no contention and no traffic: utility 0.
        """
        size = self.topology.local_size(node)
        if size < 2:
            return 0.0
        key = (node, int(window))
        cached = self._utility_cache.get(key)
        if cached is not None:
            return cached
        solution = solve_symmetric(
            int(window), size, self.params.max_backoff_stage
        )
        tau, collision = solution.tau, solution.collision
        if checks_enabled():
            # The Theorem 3 argument needs per-neighbourhood fixed
            # points that are genuine probabilities.
            check_probability(tau, "tau")
            check_probability(collision, "collision")
            check_probability(self._hidden(node), "hidden-node factor")
        one_minus = 1.0 - tau
        p_idle = one_minus**size
        p_single = size * tau * one_minus ** (size - 1)
        p_tr = 1.0 - p_idle
        tslot = (
            p_idle * self.times.idle_us
            + p_single * self.times.success_us
            + (p_tr - p_single) * self.times.collision_us
        )
        hidden = self._hidden(node)
        value = (
            tau
            * ((1.0 - collision) * hidden * self.params.gain - self.params.cost)
            / tslot
        )
        self._utility_cache[key] = value
        return value

    def _utility_matrix(self, grid: np.ndarray) -> np.ndarray:
        """Per-node utilities over a common-window grid, shape ``(G, n)``.

        Nodes sharing a contention-domain size see identical fixed
        points, so the grid solves batch per distinct size
        (:func:`repro.bianchi.batched.solve_symmetric_grid`) and only the
        per-node hidden factor differs within a group.  Matches
        :meth:`local_utility` entry by entry within floating-point noise.
        Isolated nodes keep utility 0.
        """
        n = self.topology.n_nodes
        utilities = np.zeros((grid.size, n))
        sizes = np.array(
            [self.topology.local_size(node) for node in range(n)]
        )
        windows = grid.astype(float)
        for size in np.unique(sizes[sizes >= 2]):
            solution = solve_symmetric_grid(
                windows, int(size), self.params.max_backoff_stage
            )
            tau, collision = solution.tau, solution.collision
            if checks_enabled():
                check_probability(tau, "tau")
                check_probability(collision, "collision")
            one_minus = 1.0 - tau
            p_idle = one_minus ** int(size)
            p_single = int(size) * tau * one_minus ** (int(size) - 1)
            p_tr = 1.0 - p_idle
            tslot = (
                p_idle * self.times.idle_us
                + p_single * self.times.success_us
                + (p_tr - p_single) * self.times.collision_us
            )
            for node in np.flatnonzero(sizes == size):
                hidden = self._hidden(int(node))
                if checks_enabled():
                    check_probability(hidden, "hidden-node factor")
                utilities[:, node] = (
                    tau
                    * (
                        (1.0 - collision) * hidden * self.params.gain
                        - self.params.cost
                    )
                    / tslot
                )
        return utilities

    def global_payoff(self, window: int) -> float:
        """Social welfare: sum of per-node utilities at a common window."""
        return float(
            sum(
                self.local_utility(node, window)
                for node in range(self.topology.n_nodes)
            )
        )

    # ------------------------------------------------------------------
    # Step 3-4: equilibrium and quasi-optimality
    # ------------------------------------------------------------------
    def check_no_profitable_deviation(
        self,
        equilibrium: MultihopEquilibrium,
        *,
        probe_windows: Optional[Sequence[int]] = None,
    ) -> bool:
        """Theorem 3's no-deviation property, checked numerically.

        Lowering below ``W_m`` cannot pay because every node's utility is
        increasing up to its local optimum ``W_i >= W_m`` (TFT makes the
        whole neighbourhood follow the lowered window).  The check probes
        each node's utility on windows below ``W_m``.
        """
        w_m = equilibrium.converged_window
        if probe_windows is None:
            lo = max(self.params.cw_min, 2)
            probe_windows = sorted(
                {max(lo, w_m - step) for step in (1, 2, 4, 8, 16)} - {w_m}
            )
        for node in range(self.topology.n_nodes):
            if self.topology.local_size(node) < 2:
                continue
            at_ne = self.local_utility(node, w_m)
            for window in probe_windows:
                if window >= w_m:
                    continue
                if self.local_utility(node, window) > at_ne + 1e-15:
                    return False
        return True

    def quasi_optimality(
        self,
        equilibrium: MultihopEquilibrium,
        *,
        grid: Optional[Sequence[int]] = None,
    ) -> QuasiOptimalityReport:
        """Measure the Section VII.B quasi-optimality of the NE.

        Sweeps common windows, computing per-node and global utilities,
        and compares the converged ``W_m`` against the per-node and
        global maxima.
        """
        w_m = equilibrium.converged_window
        if grid is None:
            top = int(equilibrium.local.windows.max() * 1.5) + 2
            lo = max(self.params.cw_min, max(2, w_m // 4))
            grid = np.unique(
                np.linspace(lo, top, 25).round().astype(int)
            )
            grid = np.unique(np.append(grid, w_m))
        grid_arr = np.asarray(sorted({int(w) for w in grid}), dtype=int)
        if w_m not in grid_arr:
            raise ParameterError("grid must contain the converged window")

        n = self.topology.n_nodes
        # One batched grid solve per distinct contention-domain size
        # replaces the (grid x nodes) scalar double loop.
        utilities = self._utility_matrix(grid_arr)
        ne_index = int(np.flatnonzero(grid_arr == w_m)[0])

        per_node_max = utilities.max(axis=0)
        at_ne = utilities[ne_index]
        contending = self.topology.degrees() > 0
        fraction = np.ones(n)
        positive = contending & (per_node_max > 0)
        fraction[positive] = at_ne[positive] / per_node_max[positive]

        global_curve = utilities.sum(axis=1)
        global_max = float(global_curve.max())
        global_at_ne = float(global_curve[ne_index])
        global_fraction = global_at_ne / global_max if global_max > 0 else 1.0

        if checks_enabled():
            # Retention fractions are utility ratios against the grid
            # maximum; outside [0, 1] the report is self-contradictory.
            check_probability(fraction[contending], "per-node retention")
            check_probability(global_fraction, "global retention")

        return QuasiOptimalityReport(
            grid=grid_arr,
            converged_window=w_m,
            per_node_fraction=fraction[contending],
            global_fraction=global_fraction,
            global_curve=global_curve,
        )
