"""Per-writer journals and the task-claim protocol for multi-writer runs.

One store can now be fed by several writer processes (campaign shards,
serve workers on different hosts sharing a filesystem).  Two pieces make
that safe and observable:

* **Claims** - ``<root>/claims/<digest>`` files, taken by atomic
  exclusive create, mark a task as being computed by one writer so
  shards that overlap (or a status probe) can tell "nobody started this"
  from "another writer is on it".  A claim names its writer; re-claiming
  your own digest is idempotent (that is what makes resume exact after a
  writer restarts).  Claims from crashed writers are *stolen by rename*:
  once older than ``stale_after_s`` a contender renames the claim file to
  a unique tombstone - only one racer's rename can succeed - and then
  claims afresh.
* **Journals** - ``<root>/journal/<writer>.jsonl``, append-only records
  of every digest a writer committed, with the campaign name and task
  index.  The store's object membership stays the single source of truth
  for resume (journals are advisory history, like the index), but they
  are what lets ``repro campaign status`` show per-writer shard progress
  and lets an operator audit who computed what.

Claim files and journal lines are tiny JSON documents; everything is
plain files so a shared NFS/EFS mount is a valid multi-host deployment.
"""

from __future__ import annotations

import errno
import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.contracts import check_digest
from repro.errors import StoreError

__all__ = ["ClaimInfo", "WriterJournal", "default_writer_id"]

#: Age (seconds, by claim-file mtime) after which a claim is stealable.
DEFAULT_CLAIM_STALE_S = 3600.0


def default_writer_id() -> str:
    """A writer id unique enough for one host: ``<hostname>-<pid>``."""
    return f"{platform.node() or 'writer'}-{os.getpid()}"


def _check_writer_id(writer_id: str) -> str:
    if not writer_id or any(ch in writer_id for ch in "/\\\0\n"):
        raise StoreError(
            f"writer id must be a non-empty path-safe string, "
            f"got {writer_id!r}"
        )
    return writer_id


class ClaimInfo:
    """Decoded contents of one claim file."""

    __slots__ = ("digest", "writer", "pid", "host", "claimed_at")

    def __init__(
        self,
        digest: str,
        writer: str,
        pid: Optional[int],
        host: Optional[str],
        claimed_at: Optional[float],
    ) -> None:
        self.digest = digest
        self.writer = writer
        self.pid = pid
        self.host = host
        self.claimed_at = claimed_at


class WriterJournal:
    """One writer's view of a store's claims and journal (see module doc).

    Parameters
    ----------
    root:
        The store root (claims and journals live beside ``objects/``).
    writer_id:
        Stable identity of this writer.  Reusing an id across restarts
        is what makes re-claiming idempotent; two concurrently live
        writers must use distinct ids.
    stale_after_s:
        Age past which another writer's claim may be stolen.
    """

    def __init__(
        self,
        root: Union[str, Path],
        writer_id: Optional[str] = None,
        *,
        stale_after_s: float = DEFAULT_CLAIM_STALE_S,
    ) -> None:
        if stale_after_s <= 0:
            raise StoreError(
                f"stale_after_s must be > 0, got {stale_after_s!r}"
            )
        self.root = Path(root)
        self.writer_id = _check_writer_id(
            writer_id if writer_id is not None else default_writer_id()
        )
        self.stale_after_s = float(stale_after_s)

    # -- paths ---------------------------------------------------------
    @property
    def claims_dir(self) -> Path:
        return self.root / "claims"

    @property
    def journal_dir(self) -> Path:
        return self.root / "journal"

    def claim_path(self, digest: str) -> Path:
        check_digest(digest)
        return self.claims_dir / digest

    @property
    def journal_path(self) -> Path:
        return self.journal_dir / f"{self.writer_id}.jsonl"

    # -- claims --------------------------------------------------------
    def claim(self, digest: str) -> bool:
        """Try to claim ``digest``; True when this writer now owns it.

        Idempotent for the owning writer.  A claim left by a *crashed*
        writer (older than ``stale_after_s``) is stolen by rename and
        re-claimed; a fresh claim by another live writer yields False.
        """
        if self._try_create(digest):
            return True
        owner = self.claim_owner(digest)
        if owner is not None and owner.writer == self.writer_id:
            return True
        if owner is None:
            # Claim vanished between the create attempt and the read
            # (released or stolen); take one more shot.
            return self._try_create(digest)
        if self._is_stale(digest) and self._steal(digest):
            return self._try_create(digest)
        return False

    def release(self, digest: str) -> None:
        """Drop this writer's claim on ``digest`` (no-op if not held)."""
        owner = self.claim_owner(digest)
        if owner is not None and owner.writer == self.writer_id:
            try:
                os.unlink(self.claim_path(digest))
            except FileNotFoundError:  # pragma: no cover - racy release
                pass

    def claim_owner(self, digest: str) -> Optional[ClaimInfo]:
        """Decode who holds the claim on ``digest`` (None when unclaimed)."""
        path = self.claim_path(digest)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(data, dict) or "writer" not in data:
            return None
        return ClaimInfo(
            digest=digest,
            writer=str(data["writer"]),
            pid=data.get("pid"),
            host=data.get("host"),
            claimed_at=data.get("claimed_at"),
        )

    def _try_create(self, digest: str) -> bool:
        path = self.claim_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            descriptor = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError as error:
            if error.errno == errno.EEXIST:
                return False
            raise StoreError(
                f"cannot create claim file {path}: {error}"
            ) from error
        try:
            payload = {
                "writer": self.writer_id,
                "pid": os.getpid(),
                "host": platform.node(),
                "claimed_at": time.time(),
            }
            os.write(descriptor, json.dumps(payload).encode("utf-8"))
        finally:
            os.close(descriptor)
        return True

    def _is_stale(self, digest: str) -> bool:
        try:
            age = time.time() - self.claim_path(digest).stat().st_mtime
        except OSError:
            return False
        return age >= self.stale_after_s

    def _steal(self, digest: str) -> bool:
        """Atomic rename-steal of a stale claim; True when we won."""
        path = self.claim_path(digest)
        tombstone = path.with_name(
            f".{path.name}.stale.{os.getpid()}.{time.monotonic_ns()}"
        )
        try:
            os.rename(path, tombstone)
        except OSError:
            return False
        try:
            os.unlink(tombstone)
        except OSError:  # pragma: no cover - tombstone already gone
            pass
        return True

    # -- journal -------------------------------------------------------
    def record(
        self,
        digest: str,
        *,
        campaign: Optional[str] = None,
        task_index: Optional[int] = None,
        wall_time_s: Optional[float] = None,
    ) -> None:
        """Append one committed-task record to this writer's journal.

        A journal line is a single ``write`` of one ``\\n``-terminated
        JSON document to a file opened in append mode, so concurrent
        writers to *different* journal files never interleave and a
        crash can at worst truncate the final line (readers skip
        undecodable lines).
        """
        check_digest(digest)
        entry: Dict[str, Any] = {
            "digest": digest,
            "writer": self.writer_id,
            "committed_at": time.time(),
        }
        if campaign is not None:
            entry["campaign"] = campaign
        if task_index is not None:
            entry["task_index"] = int(task_index)
        if wall_time_s is not None:
            entry["wall_time_s"] = float(wall_time_s)
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry, sort_keys=True, allow_nan=False) + "\n"
        with self.journal_path.open("a") as handle:
            handle.write(line)

    def entries(self, writer_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Journal entries of one writer (default: this one)."""
        writer = _check_writer_id(
            writer_id if writer_id is not None else self.writer_id
        )
        path = self.journal_dir / f"{writer}.jsonl"
        if not path.is_file():
            return []
        entries: List[Dict[str, Any]] = []
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line after a crash
            if isinstance(entry, dict):
                entries.append(entry)
        return entries

    def writers(self) -> List[str]:
        """Every writer id with a journal at this store root, sorted."""
        if not self.journal_dir.is_dir():
            return []
        return sorted(
            path.stem
            for path in self.journal_dir.glob("*.jsonl")
            if path.is_file()
        )

    def all_entries(self) -> List[Dict[str, Any]]:
        """Journal entries of every writer, writer-major order."""
        collected: List[Dict[str, Any]] = []
        for writer in self.writers():
            collected.extend(self.entries(writer))
        return collected
