"""Content-addressed results store (digests, manifests, queries, GC).

* :mod:`repro.store.digest` - the digest recipe: SHA-256 over a
  canonical JSON document of (experiment id, canonicalized params, seed
  material, package version).
* :mod:`repro.store.store` - the on-disk store: atomic writes, a
  provenance manifest per run, integrity verification on read, an
  index with ``find``/``latest``/``diff`` queries and ``gc`` retention.

See ``docs/store_and_campaigns.md`` for layout and recipes.
"""

from repro.store.digest import (
    DIGEST_SCHEMA,
    canonical_json,
    canonicalize,
    compute_digest,
    digest_material,
)
from repro.store.store import (
    ENV_STORE_DIR,
    MANIFEST_SCHEMA,
    Manifest,
    ResultStore,
    StoreDiff,
)

#: Cache-entering analysis root for ``repro.lint --deep`` (REPRO101):
#: everything read back from the store under a digest was produced by
#: ``run_experiment``; a cache hit is only sound if that call tree is a
#: pure function of the digested (experiment, params, seed) material.
ANALYSIS_ROOTS = ("repro.experiments.registry.run_experiment",)

__all__ = [
    "DIGEST_SCHEMA",
    "ENV_STORE_DIR",
    "MANIFEST_SCHEMA",
    "Manifest",
    "ResultStore",
    "StoreDiff",
    "canonical_json",
    "canonicalize",
    "compute_digest",
    "digest_material",
]
