"""Content-addressed results store (digests, manifests, queries, GC).

* :mod:`repro.store.digest` - the digest recipe: SHA-256 over a
  canonical JSON document of (experiment id, canonicalized params, seed
  material, package version).
* :mod:`repro.store.store` - the on-disk store: atomic writes, a
  provenance manifest per run, integrity verification on read, an
  index with ``find``/``latest``/``diff`` queries and ``gc`` retention.
* :mod:`repro.store.locking` - the advisory inter-process lock
  serialising index maintenance and GC against concurrent writers.
* :mod:`repro.store.journal` - per-writer journals and the atomic
  claim protocol behind multi-writer campaign shards.

See ``docs/store_and_campaigns.md`` for layout and recipes, and
``docs/serving.md`` for the multi-writer protocol.
"""

from repro.store.digest import (
    DIGEST_SCHEMA,
    canonical_json,
    canonicalize,
    compute_digest,
    digest_material,
)
from repro.store.journal import ClaimInfo, WriterJournal, default_writer_id
from repro.store.locking import StoreLock
from repro.store.store import (
    ENV_STORE_DIR,
    MANIFEST_SCHEMA,
    Manifest,
    ResultStore,
    StoreDiff,
)

#: Cache-entering analysis root for ``repro.lint --deep`` (REPRO101):
#: everything read back from the store under a digest was produced by
#: ``run_experiment``; a cache hit is only sound if that call tree is a
#: pure function of the digested (experiment, params, seed) material.
ANALYSIS_ROOTS = ("repro.experiments.registry.run_experiment",)

__all__ = [
    "DIGEST_SCHEMA",
    "ENV_STORE_DIR",
    "MANIFEST_SCHEMA",
    "ClaimInfo",
    "Manifest",
    "ResultStore",
    "StoreDiff",
    "StoreLock",
    "WriterJournal",
    "canonical_json",
    "canonicalize",
    "compute_digest",
    "default_writer_id",
    "digest_material",
]
