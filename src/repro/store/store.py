"""Content-addressed on-disk store for experiment results.

Layout (all JSON written atomically via
:func:`repro.experiments.export.write_json`)::

    <root>/
        index.json                      # digest -> summary (rebuildable)
        objects/<d[:2]>/<digest>/
            result.json                 # export.result_to_dict payload
            manifest.json               # provenance + integrity record

The digest is :func:`repro.store.digest.compute_digest` - a pure
function of (experiment id, canonicalized parameters, seed material,
package version) - so identical invocations share one object and the
campaign engine can skip them by set membership.  The manifest records
where the bytes came from (git SHA, host, numpy/python versions,
timestamp, wall time) and the SHA-256 of ``result.json``; every read
verifies that hash, so a tampered or truncated artefact raises
:class:`~repro.errors.IntegrityError` instead of silently feeding a
regression dashboard.

The index is a pure cache of the manifests: deleting ``index.json`` (or
handing the store a directory of objects copied from another machine)
is repaired by :meth:`ResultStore.reindex`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import shutil
import subprocess
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.contracts import check_digest
from repro.errors import IntegrityError, StoreError
from repro.experiments.export import result_to_dict, write_json
from repro.store.digest import compute_digest
from repro.store.locking import StoreLock

__all__ = [
    "ENV_STORE_DIR",
    "MANIFEST_SCHEMA",
    "Manifest",
    "ResultStore",
    "StoreDiff",
]

ENV_STORE_DIR = "REPRO_STORE_DIR"

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 1

_MISSING = object()


def _utc_now() -> str:
    """UTC timestamp for manifests (module-level so tests can patch it)."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _git_sha() -> Optional[str]:
    """Best-effort commit SHA of the working tree (None outside git)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class Manifest:
    """Provenance and integrity record of one stored run."""

    digest: str
    experiment_id: str
    params: Dict[str, Any]
    version: str
    created_at: str
    git_sha: Optional[str]
    host: str
    python_version: str
    numpy_version: str
    wall_time_s: Optional[float]
    result_sha256: str
    rendered: Optional[str] = None
    schema: int = MANIFEST_SCHEMA

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Manifest":
        known = {field.name for field in dataclasses.fields(cls)}
        missing = {
            "digest",
            "experiment_id",
            "params",
            "result_sha256",
        } - set(data)
        if missing:
            raise IntegrityError(
                f"manifest is missing required fields: {sorted(missing)!r}"
            )
        payload = {key: data[key] for key in data if key in known}
        manifest = cls(**payload)
        check_digest(manifest.digest, "manifest digest")
        check_digest(manifest.result_sha256, "manifest result_sha256")
        return manifest


@dataclass(frozen=True)
class StoreDiff:
    """Field-level delta between two stored runs.

    ``param_changes`` and ``result_changes`` map dotted paths (list
    indices included, e.g. ``rows.1.n_nodes``) to ``(a, b)`` value
    pairs; a side that lacks the path entirely reports ``"<absent>"``.
    """

    digest_a: str
    digest_b: str
    experiment_a: str
    experiment_b: str
    param_changes: Dict[str, Tuple[Any, Any]]
    result_changes: Dict[str, Tuple[Any, Any]]

    @property
    def identical(self) -> bool:
        return (
            self.experiment_a == self.experiment_b
            and not self.param_changes
            and not self.result_changes
        )

    def render(self) -> str:
        lines = [f"diff {self.digest_a[:12]} .. {self.digest_b[:12]}"]
        if self.experiment_a != self.experiment_b:
            lines.append(
                f"  experiment: {self.experiment_a} -> {self.experiment_b}"
            )
        for title, changes in (
            ("params", self.param_changes),
            ("results", self.result_changes),
        ):
            if not changes:
                continue
            lines.append(f"  {title} ({len(changes)} changed):")
            for path in sorted(changes):
                before, after = changes[path]
                lines.append(f"    {path}: {before!r} -> {after!r}")
        if self.identical:
            lines.append("  identical")
        return "\n".join(lines)


def _flatten(value: Any, prefix: str, out: Dict[str, Any]) -> None:
    if isinstance(value, dict):
        for key in value:
            _flatten(value[key], f"{prefix}.{key}" if prefix else str(key), out)
    elif isinstance(value, list):
        for index, item in enumerate(value):
            _flatten(item, f"{prefix}.{index}" if prefix else str(index), out)
    else:
        out[prefix or "<root>"] = value


def _leaf_diff(a: Any, b: Any) -> Dict[str, Tuple[Any, Any]]:
    flat_a: Dict[str, Any] = {}
    flat_b: Dict[str, Any] = {}
    _flatten(a, "", flat_a)
    _flatten(b, "", flat_b)
    changes: Dict[str, Tuple[Any, Any]] = {}
    for path in set(flat_a) | set(flat_b):
        left = flat_a.get(path, _MISSING)
        right = flat_b.get(path, _MISSING)
        if type(left) is not type(right) or left != right:
            changes[path] = (
                "<absent>" if left is _MISSING else left,
                "<absent>" if right is _MISSING else right,
            )
    return changes


class ResultStore:
    """The content-addressed results store (see module docstring)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        # One reentrant advisory lock per store instance; all mutating
        # critical sections (index read-modify-write, gc, prune,
        # reindex) serialise through it so concurrent writer processes
        # cannot lose index entries or reap each other's half-committed
        # objects.  Reads stay lock-free.
        self._lock = StoreLock(self.root / ".lock")

    @classmethod
    def default(cls) -> "ResultStore":
        """Store at ``$REPRO_STORE_DIR``, else ``./.repro-store``."""
        return cls(os.environ.get(ENV_STORE_DIR, ".repro-store"))

    # -- paths ---------------------------------------------------------
    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def object_dir(self, digest: str) -> Path:
        check_digest(digest)
        return self.root / "objects" / digest[:2] / digest

    def result_path(self, digest: str) -> Path:
        return self.object_dir(digest) / "result.json"

    def manifest_path(self, digest: str) -> Path:
        return self.object_dir(digest) / "manifest.json"

    def profile_path(self, digest: str) -> Path:
        return self.object_dir(digest) / "profile.json"

    # -- writes --------------------------------------------------------
    def put(
        self,
        experiment_id: str,
        params: Mapping[str, Any],
        result: Any,
        *,
        rendered: Optional[str] = None,
        wall_time_s: Optional[float] = None,
        digest: Optional[str] = None,
        seed_material: Any = None,
        profile: Optional[Mapping[str, Any]] = None,
    ) -> Manifest:
        """Store one run; returns its manifest.

        ``result`` may be an experiment result object or an already
        converted plain dict - both go through
        :func:`~repro.experiments.export.result_to_dict`.  Storing an
        existing digest overwrites the object (same identity, same
        content by construction).  ``profile`` (a run profile from
        :func:`repro.obs.build_profile`) is written as ``profile.json``
        next to the manifest when given.
        """
        payload = result_to_dict(result)
        if digest is None:
            digest = compute_digest(
                experiment_id, params, seed_material=seed_material
            )
        check_digest(digest)
        # The lock covers the whole commit (object files + index
        # read-modify-write) so a concurrent gc/prune can never observe
        # - and reap - a payload whose manifest is still in flight, and
        # two writers cannot lose each other's index entries.
        with self._lock:
            result_path = write_json(payload, self.result_path(digest))
            manifest = Manifest(
                digest=digest,
                experiment_id=experiment_id,
                params=dict(result_to_dict(dict(params))),
                version=_package_version(),
                created_at=_utc_now(),
                git_sha=_git_sha(),
                host=platform.node(),
                python_version=platform.python_version(),
                numpy_version=np.__version__,
                wall_time_s=wall_time_s,
                result_sha256=_sha256_file(result_path),
                rendered=rendered,
            )
            write_json(manifest.to_dict(), self.manifest_path(digest))
            if profile is not None:
                write_json(dict(profile), self.profile_path(digest))
            index = self._load_index(repair=True)
            index[digest] = self._index_entry(manifest)
            self._write_index(index)
        return manifest

    def remove(self, digest: str) -> bool:
        """Delete one object (and its index entry); True if it existed."""
        with self._lock:
            obj = self.object_dir(digest)
            existed = obj.is_dir()
            if existed:
                shutil.rmtree(obj)
                parent = obj.parent
                if parent.is_dir() and not any(parent.iterdir()):
                    parent.rmdir()
            index = self._load_index(repair=True)
            if index.pop(digest, None) is not None or existed:
                self._write_index(index)
                existed = True
        return existed

    # -- reads ---------------------------------------------------------
    def contains(self, digest: str) -> bool:
        """Whether the store holds a complete object for ``digest``."""
        return (
            self.result_path(digest).is_file()
            and self.manifest_path(digest).is_file()
        )

    def manifest(self, digest: str) -> Manifest:
        """Load and validate one manifest."""
        path = self.manifest_path(digest)
        if not path.is_file():
            raise StoreError(f"no stored run for digest {digest!r}")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise IntegrityError(
                f"manifest at {path} is not valid JSON: {error}"
            ) from error
        try:
            manifest = Manifest.from_dict(data)
        except IntegrityError as error:
            raise IntegrityError(
                f"manifest at {path} is invalid: {error}"
            ) from error
        if manifest.digest != digest:
            raise IntegrityError(
                f"manifest at {path} claims digest {manifest.digest!r}, "
                f"expected {digest!r}"
            )
        return manifest

    def load_result(self, digest: str, *, verify: bool = True) -> Any:
        """Load one result payload, verifying integrity by default."""
        if verify:
            self.verify(digest)
        path = self.result_path(digest)
        if not path.is_file():
            raise StoreError(f"no stored run for digest {digest!r}")
        return json.loads(path.read_text())

    def verify(self, digest: str) -> Manifest:
        """Check one object's bytes against its recorded SHA-256."""
        manifest = self.manifest(digest)
        path = self.result_path(digest)
        if not path.is_file():
            raise IntegrityError(
                f"stored run {digest!r} has a manifest but no result "
                f"payload at {path}"
            )
        actual = _sha256_file(path)
        if actual != manifest.result_sha256:
            raise IntegrityError(
                f"result payload at {path} fails integrity check: "
                f"sha256 {actual} != recorded {manifest.result_sha256}"
            )
        return manifest

    def has_profile(self, digest: str) -> bool:
        """Whether a run profile was stored alongside ``digest``."""
        return self.profile_path(digest).is_file()

    def load_profile(self, digest: str) -> Dict[str, Any]:
        """Load the run profile stored alongside one run."""
        path = self.profile_path(digest)
        if not path.is_file():
            raise StoreError(
                f"no run profile stored for digest {digest!r}"
            )
        try:
            profile = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise IntegrityError(
                f"run profile at {path} is not valid JSON: {error}"
            ) from error
        if not isinstance(profile, dict):
            raise IntegrityError(
                f"run profile at {path} must be a JSON object, got "
                f"{type(profile).__name__}"
            )
        return profile

    def resolve(self, prefix: str) -> str:
        """Expand a (unique) digest prefix to the full digest."""
        prefix = prefix.lower()
        matches = [d for d in self._load_index(repair=True) if d.startswith(prefix)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise StoreError(f"no stored run matches digest prefix {prefix!r}")
        raise StoreError(
            f"digest prefix {prefix!r} is ambiguous "
            f"({len(matches)} matches); give more characters"
        )

    # -- queries -------------------------------------------------------
    def find(
        self,
        experiment_id: Optional[str] = None,
        *,
        where: Optional[Mapping[str, Any]] = None,
    ) -> List[Dict[str, Any]]:
        """Index entries, optionally filtered, newest first.

        ``where`` filters on parameter equality, e.g.
        ``where={"seed": 3}`` keeps runs whose stored params include
        ``seed == 3``.
        """
        entries = list(self._load_index(repair=True).values())
        if experiment_id is not None:
            entries = [
                e for e in entries if e["experiment_id"] == experiment_id
            ]
        if where:
            wanted = result_to_dict(dict(where))
            entries = [
                e
                for e in entries
                if all(
                    e["params"].get(key, _MISSING) == value
                    for key, value in wanted.items()
                )
            ]
        entries.sort(
            key=lambda e: (e["created_at"], e["digest"]), reverse=True
        )
        return entries

    def latest(
        self, experiment_id: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """Newest index entry (for one experiment, or overall)."""
        entries = self.find(experiment_id)
        return entries[0] if entries else None

    def diff(self, digest_a: str, digest_b: str) -> StoreDiff:
        """Field-level delta between two stored runs (params + results)."""
        manifest_a = self.manifest(digest_a)
        manifest_b = self.manifest(digest_b)
        return StoreDiff(
            digest_a=digest_a,
            digest_b=digest_b,
            experiment_a=manifest_a.experiment_id,
            experiment_b=manifest_b.experiment_id,
            param_changes=_leaf_diff(manifest_a.params, manifest_b.params),
            result_changes=_leaf_diff(
                self.load_result(digest_a), self.load_result(digest_b)
            ),
        )

    # -- maintenance ---------------------------------------------------
    def gc(
        self,
        *,
        keep_latest: Optional[int] = None,
        before: Optional[str] = None,
        experiment_id: Optional[str] = None,
    ) -> List[str]:
        """Remove stored runs by retention policy; returns removed digests.

        ``keep_latest`` keeps the N newest runs *per experiment id*;
        ``before`` removes runs created strictly before the given ISO
        timestamp; ``experiment_id`` restricts either policy to one
        experiment.  With no policy it only drops incomplete objects
        (manifest without payload or vice versa).
        """
        with self._lock:
            removed = list(self.prune_incomplete())
            per_experiment: Dict[str, List[Dict[str, Any]]] = {}
            for entry in self.find(experiment_id):
                per_experiment.setdefault(
                    entry["experiment_id"], []
                ).append(entry)
            for entries in per_experiment.values():
                doomed: List[Dict[str, Any]] = []
                if keep_latest is not None:
                    if keep_latest < 0:
                        raise StoreError(
                            f"keep_latest must be >= 0, got {keep_latest!r}"
                        )
                    doomed.extend(entries[keep_latest:])
                if before is not None:
                    doomed.extend(
                        e for e in entries if e["created_at"] < before
                    )
                for entry in doomed:
                    if self.remove(entry["digest"]):
                        removed.append(entry["digest"])
        return sorted(set(removed))

    def prune_incomplete(self) -> List[str]:
        """Drop half-written objects (no manifest or no payload).

        Holds the store lock for the whole sweep: an in-flight ``put``
        from another process commits its object files under the same
        lock, so the sweep can never observe (and reap) a payload whose
        manifest has not landed yet.
        """
        removed = []
        with self._lock:
            for obj in self._iter_object_dirs():
                digest = obj.name
                if not self.contains(digest):
                    shutil.rmtree(obj)
                    removed.append(digest)
            if removed:
                self.reindex()
        return removed

    def reindex(self) -> int:
        """Rebuild ``index.json`` from the manifests; returns entry count."""
        with self._lock:
            index: Dict[str, Dict[str, Any]] = {}
            for obj in self._iter_object_dirs():
                digest = obj.name
                if not self.contains(digest):
                    continue
                try:
                    index[digest] = self._index_entry(self.manifest(digest))
                except IntegrityError:
                    continue
            self._write_index(index)
        return len(index)

    # -- internals -----------------------------------------------------
    def _iter_object_dirs(self) -> List[Path]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(
            child
            for shard in objects.iterdir()
            if shard.is_dir()
            for child in shard.iterdir()
            if child.is_dir()
        )

    @staticmethod
    def _index_entry(manifest: Manifest) -> Dict[str, Any]:
        return {
            "digest": manifest.digest,
            "experiment_id": manifest.experiment_id,
            "params": manifest.params,
            "created_at": manifest.created_at,
            "wall_time_s": manifest.wall_time_s,
            "version": manifest.version,
        }

    def _load_index(self, *, repair: bool = False) -> Dict[str, Dict[str, Any]]:
        path = self.index_path
        if not path.is_file():
            if repair and (self.root / "objects").is_dir():
                self.reindex()
                return self._load_index()
            return {}
        try:
            data = json.loads(path.read_text())
            entries = data["entries"]
            if not isinstance(entries, dict):
                raise TypeError("entries must be an object")
        except (json.JSONDecodeError, KeyError, TypeError):
            if repair:
                self.reindex()
                return self._load_index()
            raise StoreError(f"corrupt store index at {path}") from None
        return entries

    def _write_index(self, entries: Dict[str, Dict[str, Any]]) -> None:
        write_json(
            {"schema": MANIFEST_SCHEMA, "entries": entries}, self.index_path
        )


def _package_version() -> str:
    from repro import __version__

    return __version__
