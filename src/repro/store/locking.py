"""Advisory inter-process locking for the results store.

The store's *object* writes were already crash-safe (atomic
``os.replace`` via :func:`repro.experiments.export.write_json`), but its
*index* maintenance was not concurrency-safe: ``put`` performs a
read-modify-write of ``index.json``, and ``gc``/``prune_incomplete``
walk the object tree deleting directories - two processes doing both at
once could drop index entries or reap an object another writer was in
the middle of committing.  :class:`StoreLock` serialises those critical
sections across processes with a plain lock *file*:

* **Acquire** is an atomic exclusive create (``O_CREAT | O_EXCL``) of
  ``<root>/.lock`` - the POSIX-portable advisory lock that needs no
  ``fcntl`` and works on any local filesystem.
* **Stale claims are stolen by rename.**  A crashed holder leaves its
  lock file behind; once the file is older than ``stale_after_s`` a
  contender *renames* it to a unique tombstone before retrying the
  exclusive create.  ``os.rename`` of a vanished source raises, so when
  several processes race for the same stale lock exactly one steal
  succeeds - the same claim-by-rename protocol
  :class:`repro.store.journal.WriterJournal` uses for task claims.
* **Reentrant per instance.**  The store's compound operations
  (``gc`` -> ``remove``) nest acquisitions on one instance; a depth
  counter makes that free.  Distinct instances - and distinct
  processes - always contend through the filesystem.

Lock files carry a JSON payload (pid, host, creation time) purely for
post-mortem diagnostics; correctness never depends on reading it.
"""

from __future__ import annotations

import errno
import json
import os
import platform
import threading
import time
from pathlib import Path
from typing import Optional, Union

from repro.errors import StoreError

__all__ = ["StoreLock"]

#: Default seconds a contender waits for the lock before giving up.
DEFAULT_TIMEOUT_S = 30.0

#: Default age after which an abandoned lock file may be stolen.
DEFAULT_STALE_AFTER_S = 300.0


class StoreLock:
    """Advisory file lock guarding a store's mutating critical sections.

    Parameters
    ----------
    path:
        Location of the lock file (conventionally ``<root>/.lock``).
    timeout_s:
        Seconds to wait for acquisition before raising
        :class:`~repro.errors.StoreError`.
    poll_interval_s:
        Sleep between acquisition attempts while contending.
    stale_after_s:
        Age (by file mtime) past which a lock file is considered
        abandoned and eligible for the rename-steal protocol.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        poll_interval_s: float = 0.01,
        stale_after_s: float = DEFAULT_STALE_AFTER_S,
    ) -> None:
        if timeout_s < 0:
            raise StoreError(f"timeout_s must be >= 0, got {timeout_s!r}")
        if poll_interval_s <= 0:
            raise StoreError(
                f"poll_interval_s must be > 0, got {poll_interval_s!r}"
            )
        if stale_after_s <= 0:
            raise StoreError(
                f"stale_after_s must be > 0, got {stale_after_s!r}"
            )
        self.path = Path(path)
        self.timeout_s = float(timeout_s)
        self.poll_interval_s = float(poll_interval_s)
        self.stale_after_s = float(stale_after_s)
        # Threads within one process (the serve layer commits from a
        # thread pool) serialise on the RLock; only the outermost
        # thread-level acquisition touches the file, so the file lock
        # stays the cross-process arbiter and ``_depth`` needs no
        # additional synchronisation.
        self._thread_lock = threading.RLock()
        self._depth = 0

    # ------------------------------------------------------------------
    @property
    def held(self) -> bool:
        """Whether this instance currently holds the lock."""
        return self._depth > 0

    def acquire(self) -> None:
        """Take the lock, blocking up to ``timeout_s``; reentrant."""
        self._thread_lock.acquire()
        if self._depth > 0:
            self._depth += 1
            return
        try:
            deadline = time.monotonic() + self.timeout_s
            while True:
                if self._try_create():
                    self._depth = 1
                    return
                self._steal_if_stale()
                if time.monotonic() >= deadline:
                    raise StoreError(
                        f"could not acquire store lock {self.path} within "
                        f"{self.timeout_s:g}s (held by {self._holder()!r}); "
                        "if the holder crashed the lock becomes stealable "
                        f"after {self.stale_after_s:g}s"
                    )
                time.sleep(self.poll_interval_s)
        except BaseException:
            self._thread_lock.release()
            raise

    def release(self) -> None:
        """Release one acquisition; removes the file at depth zero."""
        if self._depth == 0:
            raise StoreError(
                f"store lock {self.path} released without being held"
            )
        self._depth -= 1
        if self._depth == 0:
            try:
                os.unlink(self.path)
            except FileNotFoundError:  # pragma: no cover - stolen as stale
                pass
        self._thread_lock.release()

    def __enter__(self) -> "StoreLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    # ------------------------------------------------------------------
    def _try_create(self) -> bool:
        """One atomic exclusive-create attempt; True when we now hold it."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            descriptor = os.open(
                self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except OSError as error:
            if error.errno in (errno.EEXIST, errno.EACCES):
                return False
            raise StoreError(
                f"cannot create store lock {self.path}: {error}"
            ) from error
        try:
            payload = {
                "pid": os.getpid(),
                "host": platform.node(),
                "created_at": time.time(),
            }
            os.write(descriptor, json.dumps(payload).encode("utf-8"))
        finally:
            os.close(descriptor)
        return True

    def _steal_if_stale(self) -> None:
        """Steal an abandoned lock by renaming it to a tombstone.

        Only one of any number of racing contenders can win the rename
        (the losers' ``os.rename`` raises ``FileNotFoundError``), so the
        subsequent exclusive create is contended fairly again.
        """
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return  # already released or stolen; retry the create
        if age < self.stale_after_s:
            return
        tombstone = self.path.with_name(
            f"{self.path.name}.stale.{os.getpid()}.{time.monotonic_ns()}"
        )
        try:
            os.rename(self.path, tombstone)
        except OSError:
            return  # another contender won the steal
        try:
            os.unlink(tombstone)
        except OSError:  # pragma: no cover - tombstone already gone
            pass

    def _holder(self) -> Optional[str]:
        """Best-effort description of the current holder (diagnostics)."""
        try:
            data = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return f"pid {data.get('pid')} on {data.get('host')}"
