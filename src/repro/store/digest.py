"""Content digests for experiment runs.

A run is addressed by the SHA-256 of a canonical JSON document built
from the *identity* of the computation - experiment id, canonicalized
parameters, seed material and package version - and nothing else.  Two
invocations that would produce the same artefact therefore share one
digest, which is what lets the store serve cache hits and lets a
campaign resume by set difference.

Canonicalization reuses :func:`repro.experiments.export.result_to_dict`
(numpy scalars/arrays, enums, dataclasses and ranges all normalise to
plain JSON types), then serialises with sorted keys and fixed
separators, so key order, ``np.int64`` vs ``int`` and similar
representation accidents cannot change the digest.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Optional

from repro.experiments.export import result_to_dict

__all__ = [
    "DIGEST_SCHEMA",
    "canonical_json",
    "canonicalize",
    "compute_digest",
    "digest_material",
]

#: Version of the digest recipe itself.  Bump when the material layout
#: changes so old store entries are never misattributed to new code.
DIGEST_SCHEMA = 1


def _package_version() -> str:
    from repro import __version__

    return __version__


def canonicalize(value: Any) -> Any:
    """Normalise ``value`` to plain JSON types (see module docstring)."""
    return result_to_dict(value)


def canonical_json(value: Any) -> str:
    """Serialise ``value`` to its one canonical JSON representation."""
    return json.dumps(
        canonicalize(value),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def digest_material(
    experiment_id: str,
    params: Mapping[str, Any],
    *,
    seed_material: Any = None,
    version: Optional[str] = None,
) -> Dict[str, Any]:
    """The canonical document a run digest is computed over.

    ``seed_material`` defaults to the ``seed`` entry of ``params`` (the
    convention every stochastic experiment follows); pass it explicitly
    when seed material lives elsewhere.
    """
    canonical_params = canonicalize(dict(params))
    if seed_material is None and isinstance(canonical_params, dict):
        seed_material = canonical_params.get("seed")
    return {
        "schema": DIGEST_SCHEMA,
        "experiment": experiment_id,
        "params": canonical_params,
        "seed": canonicalize(seed_material),
        "version": version if version is not None else _package_version(),
    }


def compute_digest(
    experiment_id: str,
    params: Mapping[str, Any],
    *,
    seed_material: Any = None,
    version: Optional[str] = None,
) -> str:
    """SHA-256 content digest of one experiment run's identity."""
    material = digest_material(
        experiment_id,
        params,
        seed_material=seed_material,
        version=version,
    )
    return hashlib.sha256(canonical_json(material).encode("ascii")).hexdigest()
