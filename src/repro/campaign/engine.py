"""Campaign execution: cache-aware dispatch with exact resume.

``run_campaign`` expands a spec (:func:`repro.campaign.spec.expand_tasks`),
checks every task digest against the results store, and dispatches only
the misses through :func:`repro.experiments.parallel.parallel_map` - the
same runner, with the same SeedSequence-spawn determinism, the sweep
experiments use internally.  Each finished task is committed to the
store from the parent process *as it completes* (the runner's
``on_result`` hook), so an interrupted campaign (SIGINT, OOM kill,
power loss mid-JSON thanks to atomic writes) leaves a store whose
membership is exactly the completed prefix; rerunning the same spec
resumes from there without recomputing anything.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import IntegrityError
from repro.experiments.export import result_to_dict
from repro.experiments.parallel import parallel_map
from repro.experiments.registry import run_experiment
from repro.experiments.reporting import format_table
from repro.obs import MemoryRecorder, build_profile, use_recorder
from repro.obs.metrics import inc as _obs_inc
from repro.store import ResultStore
from repro.campaign.spec import CampaignSpec, CampaignTask, expand_tasks

__all__ = [
    "CampaignReport",
    "TaskOutcome",
    "campaign_status",
    "run_campaign",
]

#: Cache-entering analysis root for ``repro.lint --deep`` (REPRO101):
#: ``run_experiment`` is what a campaign worker executes to produce the
#: payload committed under a task digest - the timing/recorder work in
#: ``_execute_task`` wraps it but lands in the manifest, not the cached
#: result, so the purity obligation starts exactly here.
ANALYSIS_ROOTS = ("repro.experiments.registry.run_experiment",)

_WorkerTask = Tuple[str, Dict[str, Any]]
_WorkerResult = Tuple[Any, str, float, List[Dict[str, Any]]]


@dataclass(frozen=True)
class TaskOutcome:
    """Final state of one campaign task."""

    index: int
    digest: str
    params: Dict[str, Any]
    status: str  # "cached" | "executed" | "pending"
    wall_time_s: Optional[float] = None


@dataclass(frozen=True)
class CampaignReport:
    """Summary of one :func:`run_campaign`/:func:`campaign_status` pass."""

    spec_name: str
    experiment_id: str
    outcomes: List[TaskOutcome]
    interrupted: bool = False

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "cached")

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "executed")

    @property
    def pending(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "pending")

    @property
    def complete(self) -> bool:
        return self.pending == 0 and not self.interrupted

    def render(self) -> str:
        headers = ["#", "digest", "status", "wall [s]", "params"]
        rows = []
        for outcome in self.outcomes:
            wall = (
                "-"
                if outcome.wall_time_s is None
                else f"{outcome.wall_time_s:.2f}"
            )
            params = ", ".join(
                f"{key}={value!r}" for key, value in outcome.params.items()
            )
            rows.append(
                [outcome.index, outcome.digest[:12], outcome.status, wall, params]
            )
        state = "INTERRUPTED" if self.interrupted else (
            "complete" if self.complete else "incomplete"
        )
        title = (
            f"Campaign {self.spec_name!r} ({self.experiment_id}): "
            f"{self.total} tasks, {self.cached} cached, "
            f"{self.executed} executed, {self.pending} pending [{state}]"
        )
        return format_table(headers, rows, title=title)


def _execute_task(task: _WorkerTask) -> _WorkerResult:
    """Worker: run one experiment task (module-level, hence picklable).

    Each task records into its own :class:`~repro.obs.MemoryRecorder`
    regardless of any ambient recorder, and ships the events back with
    the result so the parent can fold them into the per-run profile
    committed next to the manifest.
    """
    experiment_id, params = task
    recorder = MemoryRecorder()
    started = time.perf_counter()
    with use_recorder(recorder):
        result = run_experiment(experiment_id, **params)
    wall = time.perf_counter() - started
    return result_to_dict(result), result.render(), wall, recorder.events


def _partition(
    tasks: List[CampaignTask], store: ResultStore, *, force: bool
) -> Tuple[List[CampaignTask], Dict[int, str]]:
    """Split tasks into (to-run, {index: "cached"}) by store membership.

    A cache hit is only honoured after :meth:`ResultStore.verify`: a
    task whose stored object is corrupt (tampered payload, truncated or
    field-stripped manifest) is demoted to pending and re-executed, so a
    resumed campaign heals the store instead of trusting it blindly.
    """
    cached: Dict[int, str] = {}
    pending: List[CampaignTask] = []
    for task in tasks:
        hit = False
        if not force and store.contains(task.digest):
            try:
                store.verify(task.digest)
                hit = True
            except IntegrityError:
                hit = False
        _obs_inc("store.cache", 1, outcome="hit" if hit else "miss")
        if hit:
            cached[task.index] = "cached"
        else:
            pending.append(task)
    return pending, cached


def campaign_status(
    spec: CampaignSpec, *, store: Optional[ResultStore] = None
) -> CampaignReport:
    """What a run would do now: which tasks are cached, which pending."""
    store = store if store is not None else ResultStore.default()
    tasks = expand_tasks(spec)
    pending, cached = _partition(tasks, store, force=False)
    pending_indices = {task.index for task in pending}
    outcomes = [
        TaskOutcome(
            index=task.index,
            digest=task.digest,
            params=task.params,
            status="pending" if task.index in pending_indices else "cached",
        )
        for task in tasks
    ]
    return CampaignReport(
        spec_name=spec.name,
        experiment_id=spec.experiment_id,
        outcomes=outcomes,
    )


def run_campaign(
    spec: CampaignSpec,
    *,
    store: Optional[ResultStore] = None,
    jobs: Optional[int] = None,
    force: bool = False,
) -> CampaignReport:
    """Run a campaign through the store (see module docstring).

    Parameters
    ----------
    spec:
        The validated campaign specification.
    store:
        Results store; defaults to :meth:`ResultStore.default`.
    jobs:
        Worker override; ``None`` defers to ``spec.jobs``.
    force:
        Re-execute every task even on a store hit (``--no-cache``).

    Notes
    -----
    A spec's ``backend`` field is pinned around every executed task
    (highest selection precedence, above the CLI flag and the
    environment variable); like ``jobs`` it never enters task digests,
    so cached results are shared across backends.

    Returns
    -------
    CampaignReport
        Per-task outcomes.  If the sweep is interrupted by SIGINT the
        report is returned (not raised) with ``interrupted=True`` and
        the unfinished tasks left ``"pending"``; everything committed
        before the interrupt stays in the store.
    """
    store = store if store is not None else ResultStore.default()
    tasks = expand_tasks(spec)
    pending, statuses = _partition(tasks, store, force=force)
    wall_times: Dict[int, float] = {}

    def _commit(position: int, _task: _WorkerTask, value: _WorkerResult) -> None:
        task = pending[position]
        payload, rendered, wall, events = value
        profile = build_profile(
            events,
            meta={
                "experiment_id": task.experiment_id,
                "params": task.params,
                "campaign": spec.name,
                "task_index": task.index,
            },
        )
        store.put(
            task.experiment_id,
            task.params,
            payload,
            rendered=rendered,
            wall_time_s=wall,
            digest=task.digest,
            profile=profile,
        )
        statuses[task.index] = "executed"
        wall_times[task.index] = wall

    interrupted = False
    worker_tasks: List[_WorkerTask] = [
        (task.experiment_id, dict(task.params)) for task in pending
    ]
    try:
        parallel_map(
            _execute_task,
            worker_tasks,
            jobs=jobs if jobs is not None else spec.jobs,
            on_result=_commit,
            backend=spec.backend,
        )
    except KeyboardInterrupt:
        interrupted = True

    outcomes = [
        TaskOutcome(
            index=task.index,
            digest=task.digest,
            params=task.params,
            status=statuses.get(task.index, "pending"),
            wall_time_s=wall_times.get(task.index),
        )
        for task in tasks
    ]
    return CampaignReport(
        spec_name=spec.name,
        experiment_id=spec.experiment_id,
        outcomes=outcomes,
        interrupted=interrupted,
    )
