"""Campaign execution: cache-aware dispatch with exact resume.

``run_campaign`` expands a spec (:func:`repro.campaign.spec.expand_tasks`),
checks every task digest against the results store, and dispatches only
the misses through :func:`repro.experiments.parallel.parallel_map` - the
same runner, with the same SeedSequence-spawn determinism, the sweep
experiments use internally.  Each finished task is committed to the
store from the parent process *as it completes* (the runner's
``on_result`` hook), so an interrupted campaign (SIGINT, OOM kill,
power loss mid-JSON thanks to atomic writes) leaves a store whose
membership is exactly the completed prefix; rerunning the same spec
resumes from there without recomputing anything.

**Multi-writer sharding.**  One campaign can be split across several
writer processes (or hosts sharing the store filesystem): pass
``shard=(index, count)`` to restrict a run to the tasks with
``task.index % count == index``, and/or ``writer_id`` to claim tasks
through the store's :class:`~repro.store.journal.WriterJournal` before
executing them.  Claims make overlapping writers safe (a task is only
computed once even when shards overlap or a writer is started twice) and
every commit is journalled per writer, which is what
:func:`campaign_status` reads to show shard progress and to distinguish
"pending" from "claimed by another writer".  Resume stays exact and
writer-free: store membership alone decides what still needs computing,
so a plain single-process rerun after any number of sharded writers
finds zero missing and zero duplicated tasks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CampaignError, IntegrityError
from repro.experiments.export import result_to_dict
from repro.experiments.parallel import parallel_map
from repro.experiments.registry import run_experiment
from repro.experiments.reporting import format_table
from repro.obs import MemoryRecorder, build_profile, use_recorder
from repro.obs.metrics import inc as _obs_inc
from repro.store import ResultStore, WriterJournal
from repro.campaign.spec import CampaignSpec, CampaignTask, expand_tasks

__all__ = [
    "CampaignReport",
    "TaskOutcome",
    "campaign_status",
    "parse_shard",
    "run_campaign",
]

#: Cache-entering analysis root for ``repro.lint --deep`` (REPRO101):
#: ``run_experiment`` is what a campaign worker executes to produce the
#: payload committed under a task digest - the timing/recorder work in
#: ``_execute_task`` wraps it but lands in the manifest, not the cached
#: result, so the purity obligation starts exactly here.
ANALYSIS_ROOTS = ("repro.experiments.registry.run_experiment",)

_WorkerTask = Tuple[str, Dict[str, Any]]
_WorkerResult = Tuple[Any, str, float, List[Dict[str, Any]]]


@dataclass(frozen=True)
class TaskOutcome:
    """Final state of one campaign task.

    ``status`` is one of ``"cached"`` (already in the store),
    ``"executed"`` (computed and committed by this run), ``"pending"``
    (not computed and unclaimed), ``"claimed"`` (another writer holds
    the claim; ``claimed_by`` names it) or ``"other-shard"`` (excluded
    from this run by its ``shard`` selector).
    """

    index: int
    digest: str
    params: Dict[str, Any]
    status: str
    wall_time_s: Optional[float] = None
    claimed_by: Optional[str] = None


@dataclass(frozen=True)
class CampaignReport:
    """Summary of one :func:`run_campaign`/:func:`campaign_status` pass.

    ``writer_progress`` maps writer ids to the number of tasks of this
    campaign each has journalled as committed (empty outside multi-writer
    mode).
    """

    spec_name: str
    experiment_id: str
    outcomes: List[TaskOutcome]
    interrupted: bool = False
    writer_progress: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "cached")

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "executed")

    @property
    def pending(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "pending")

    @property
    def claimed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "claimed")

    @property
    def other_shard(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "other-shard")

    @property
    def complete(self) -> bool:
        return (
            self.pending == 0
            and self.claimed == 0
            and self.other_shard == 0
            and not self.interrupted
        )

    def render(self) -> str:
        headers = ["#", "digest", "status", "wall [s]", "params"]
        rows = []
        for outcome in self.outcomes:
            wall = (
                "-"
                if outcome.wall_time_s is None
                else f"{outcome.wall_time_s:.2f}"
            )
            params = ", ".join(
                f"{key}={value!r}" for key, value in outcome.params.items()
            )
            status = outcome.status
            if outcome.claimed_by is not None:
                status = f"{status}({outcome.claimed_by})"
            rows.append(
                [outcome.index, outcome.digest[:12], status, wall, params]
            )
        state = "INTERRUPTED" if self.interrupted else (
            "complete" if self.complete else "incomplete"
        )
        extras = ""
        if self.claimed:
            extras += f", {self.claimed} claimed"
        if self.other_shard:
            extras += f", {self.other_shard} other-shard"
        title = (
            f"Campaign {self.spec_name!r} ({self.experiment_id}): "
            f"{self.total} tasks, {self.cached} cached, "
            f"{self.executed} executed, {self.pending} pending"
            f"{extras} [{state}]"
        )
        table = format_table(headers, rows, title=title)
        if not self.writer_progress:
            return table
        lines = [table, "writers:"]
        for writer in sorted(self.writer_progress):
            committed = self.writer_progress[writer]
            share = committed / self.total if self.total else 0.0
            lines.append(
                f"  {writer}: {committed}/{self.total} committed "
                f"({share:.1%})"
            )
        return "\n".join(lines)


def _execute_task(task: _WorkerTask) -> _WorkerResult:
    """Worker: run one experiment task (module-level, hence picklable).

    Each task records into its own :class:`~repro.obs.MemoryRecorder`
    regardless of any ambient recorder, and ships the events back with
    the result so the parent can fold them into the per-run profile
    committed next to the manifest.
    """
    experiment_id, params = task
    recorder = MemoryRecorder()
    started = time.perf_counter()
    with use_recorder(recorder):
        result = run_experiment(experiment_id, **params)
    wall = time.perf_counter() - started
    return result_to_dict(result), result.render(), wall, recorder.events


def _partition(
    tasks: List[CampaignTask], store: ResultStore, *, force: bool
) -> Tuple[List[CampaignTask], Dict[int, str]]:
    """Split tasks into (to-run, {index: "cached"}) by store membership.

    A cache hit is only honoured after :meth:`ResultStore.verify`: a
    task whose stored object is corrupt (tampered payload, truncated or
    field-stripped manifest) is demoted to pending and re-executed, so a
    resumed campaign heals the store instead of trusting it blindly.
    """
    cached: Dict[int, str] = {}
    pending: List[CampaignTask] = []
    for task in tasks:
        hit = False
        if not force and store.contains(task.digest):
            try:
                store.verify(task.digest)
                hit = True
            except IntegrityError:
                hit = False
        _obs_inc("store.cache", 1, outcome="hit" if hit else "miss")
        if hit:
            cached[task.index] = "cached"
        else:
            pending.append(task)
    return pending, cached


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a ``K/M`` shard selector into ``(index, count)``.

    ``K`` is the zero-based shard index, ``M`` the shard count; a run
    with ``shard=(K, M)`` executes exactly the tasks whose index is
    congruent to ``K`` modulo ``M``.
    """
    parts = text.split("/")
    if len(parts) != 2:
        raise CampaignError(
            f"shard must look like 'K/M' (e.g. '0/4'), got {text!r}"
        )
    try:
        index, count = int(parts[0]), int(parts[1])
    except ValueError as error:
        raise CampaignError(
            f"shard must be two integers 'K/M', got {text!r}"
        ) from error
    return _check_shard((index, count))


def _check_shard(shard: Tuple[int, int]) -> Tuple[int, int]:
    index, count = shard
    if count < 1:
        raise CampaignError(f"shard count must be >= 1, got {count!r}")
    if not 0 <= index < count:
        raise CampaignError(
            f"shard index must lie in [0, {count}), got {index!r}"
        )
    return (index, count)


def _writer_progress(
    journal: WriterJournal, campaign_name: str
) -> Dict[str, int]:
    """Per-writer committed-task counts for one campaign's journals."""
    progress: Dict[str, int] = {}
    for entry in journal.all_entries():
        if entry.get("campaign") != campaign_name:
            continue
        writer = str(entry.get("writer", "?"))
        progress[writer] = progress.get(writer, 0) + 1
    return progress


def campaign_status(
    spec: CampaignSpec, *, store: Optional[ResultStore] = None
) -> CampaignReport:
    """What a run would do now: which tasks are cached, which pending.

    Once multi-writer journals exist for the store, a pending task whose
    digest is claimed by a writer is reported ``"claimed"`` (with the
    writer id) rather than ``"pending"``, and the report carries the
    per-writer shard progress from the journals.
    """
    store = store if store is not None else ResultStore.default()
    tasks = expand_tasks(spec)
    pending, cached = _partition(tasks, store, force=False)
    pending_indices = {task.index for task in pending}
    journal = WriterJournal(store.root, "status-probe")
    outcomes = []
    for task in tasks:
        status = "pending" if task.index in pending_indices else "cached"
        claimed_by: Optional[str] = None
        if status == "pending":
            owner = journal.claim_owner(task.digest)
            if owner is not None:
                status = "claimed"
                claimed_by = owner.writer
        outcomes.append(
            TaskOutcome(
                index=task.index,
                digest=task.digest,
                params=task.params,
                status=status,
                claimed_by=claimed_by,
            )
        )
    return CampaignReport(
        spec_name=spec.name,
        experiment_id=spec.experiment_id,
        outcomes=outcomes,
        writer_progress=_writer_progress(journal, spec.name),
    )


def run_campaign(
    spec: CampaignSpec,
    *,
    store: Optional[ResultStore] = None,
    jobs: Optional[int] = None,
    force: bool = False,
    shard: Optional[Tuple[int, int]] = None,
    writer_id: Optional[str] = None,
) -> CampaignReport:
    """Run a campaign through the store (see module docstring).

    Parameters
    ----------
    spec:
        The validated campaign specification.
    store:
        Results store; defaults to :meth:`ResultStore.default`.
    jobs:
        Worker override; ``None`` defers to ``spec.jobs``.
    force:
        Re-execute every task even on a store hit (``--no-cache``).
    shard:
        ``(index, count)`` selector restricting this run to the tasks
        with ``task.index % count == index`` (see :func:`parse_shard`);
        excluded tasks are reported ``"other-shard"``.
    writer_id:
        Identity under which pending tasks are claimed and commits are
        journalled.  Supplying a shard without a writer id uses
        :func:`~repro.store.journal.default_writer_id`, so concurrent
        shard processes are always claim-protected against each other.

    Notes
    -----
    A spec's ``backend`` field is pinned around every executed task
    (highest selection precedence, above the CLI flag and the
    environment variable); like ``jobs`` it never enters task digests,
    so cached results are shared across backends.

    Returns
    -------
    CampaignReport
        Per-task outcomes.  If the sweep is interrupted by SIGINT the
        report is returned (not raised) with ``interrupted=True`` and
        the unfinished tasks left ``"pending"``; everything committed
        before the interrupt stays in the store, and this writer's
        unexecuted claims are released so other writers can pick the
        tasks up immediately.
    """
    store = store if store is not None else ResultStore.default()
    if shard is not None:
        shard = _check_shard(shard)
    tasks = expand_tasks(spec)
    pending, statuses = _partition(tasks, store, force=force)
    wall_times: Dict[int, float] = {}
    claimed_by: Dict[int, str] = {}

    if shard is not None:
        index, count = shard
        in_shard = []
        for task in pending:
            if task.index % count == index:
                in_shard.append(task)
            else:
                statuses[task.index] = "other-shard"
        pending = in_shard

    journal: Optional[WriterJournal] = None
    held_claims: Dict[int, str] = {}
    if shard is not None or writer_id is not None:
        journal = WriterJournal(store.root, writer_id)
        runnable = []
        for task in pending:
            if journal.claim(task.digest):
                held_claims[task.index] = task.digest
                runnable.append(task)
            else:
                owner = journal.claim_owner(task.digest)
                statuses[task.index] = "claimed"
                if owner is not None:
                    claimed_by[task.index] = owner.writer
        pending = runnable

    def _commit(position: int, _task: _WorkerTask, value: _WorkerResult) -> None:
        task = pending[position]
        payload, rendered, wall, events = value
        profile = build_profile(
            events,
            meta={
                "experiment_id": task.experiment_id,
                "params": task.params,
                "campaign": spec.name,
                "task_index": task.index,
            },
        )
        store.put(
            task.experiment_id,
            task.params,
            payload,
            rendered=rendered,
            wall_time_s=wall,
            digest=task.digest,
            profile=profile,
        )
        statuses[task.index] = "executed"
        wall_times[task.index] = wall
        if journal is not None:
            journal.record(
                task.digest,
                campaign=spec.name,
                task_index=task.index,
                wall_time_s=wall,
            )
            journal.release(task.digest)
            held_claims.pop(task.index, None)

    interrupted = False
    worker_tasks: List[_WorkerTask] = [
        (task.experiment_id, dict(task.params)) for task in pending
    ]
    try:
        parallel_map(
            _execute_task,
            worker_tasks,
            jobs=jobs if jobs is not None else spec.jobs,
            on_result=_commit,
            backend=spec.backend,
        )
    except KeyboardInterrupt:
        interrupted = True
    finally:
        if journal is not None:
            # Claims on tasks we never committed (interrupt, worker
            # failure) must not linger: release them so other writers
            # see plain "pending" instead of waiting out staleness.
            for digest in held_claims.values():
                journal.release(digest)

    outcomes = [
        TaskOutcome(
            index=task.index,
            digest=task.digest,
            params=task.params,
            status=statuses.get(task.index, "pending"),
            wall_time_s=wall_times.get(task.index),
            claimed_by=claimed_by.get(task.index),
        )
        for task in tasks
    ]
    return CampaignReport(
        spec_name=spec.name,
        experiment_id=spec.experiment_id,
        outcomes=outcomes,
        interrupted=interrupted,
        writer_progress=(
            _writer_progress(journal, spec.name) if journal is not None else {}
        ),
    )
