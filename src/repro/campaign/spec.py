"""Declarative campaign specifications.

A campaign is one experiment swept over a parameter space, written as a
TOML or JSON document::

    name = "cw-sweep"                  # optional; defaults to file stem
    experiment = "table2"
    jobs = 4                           # optional worker count
    backend = "cnative"                # optional compute backend

    [params]                           # fixed overrides for every task
    slots_per_point = 40000

    [grid]                             # cartesian-product axes
    seed = [1, 2, 3]

    [zip]                              # equal-length zipped axes
    n_points = [10, 20]

    [seeds]                            # optional per-task seed policy
    parameter = "seed"
    base = 7
    policy = "spawn"                   # fixed | sequential | spawn

Expansion is deterministic: grid axes iterate in declaration order
(cartesian product, first axis slowest), zipped rows vary fastest, and
the seed policy is a pure function of the base seed and task index - so
the same spec always expands to the same task list with the same
content digests, which is what makes resume-by-store-membership exact.

``jobs`` and ``backend`` are speed knobs: neither enters the task
digests (every compute backend is pinned to the numpy reference by
equivalence tests), so changing them never invalidates cached results.
A spec's ``backend`` outranks the CLI ``--backend`` flag, which in turn
outranks the ``REPRO_BACKEND`` environment variable.
"""

from __future__ import annotations

import itertools
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.backends import get_backend
from repro.errors import BackendError, CampaignError
from repro.experiments.registry import get_experiment
from repro.store.digest import compute_digest

__all__ = [
    "SEED_POLICIES",
    "CampaignSpec",
    "CampaignTask",
    "expand_tasks",
    "load_spec",
    "spec_from_dict",
]

SEED_POLICIES = ("fixed", "sequential", "spawn")


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign specification (see module docstring)."""

    name: str
    experiment_id: str
    base_params: Dict[str, Any] = field(default_factory=dict)
    grid: Dict[str, List[Any]] = field(default_factory=dict)
    zip_axes: Dict[str, List[Any]] = field(default_factory=dict)
    seed_parameter: Optional[str] = None
    seed_base: int = 0
    seed_policy: str = "spawn"
    jobs: Optional[int] = None
    backend: Optional[str] = None

    @property
    def n_tasks(self) -> int:
        count = 1
        for values in self.grid.values():
            count *= len(values)
        if self.zip_axes:
            count *= len(next(iter(self.zip_axes.values())))
        return count


@dataclass(frozen=True)
class CampaignTask:
    """One expanded unit of work, addressed by its content digest."""

    index: int
    experiment_id: str
    params: Dict[str, Any]
    digest: str


def _require_table(value: Any, name: str) -> Dict[str, Any]:
    if value is None:
        return {}
    if not isinstance(value, Mapping):
        raise CampaignError(f"campaign {name!r} must be a table/object")
    return dict(value)


def spec_from_dict(
    data: Mapping[str, Any], *, name: Optional[str] = None
) -> CampaignSpec:
    """Validate a raw spec document into a :class:`CampaignSpec`."""
    if not isinstance(data, Mapping):
        raise CampaignError("campaign spec must be a table/object at top level")
    unknown = set(data) - {
        "name", "experiment", "jobs", "backend", "params", "grid", "zip",
        "seeds",
    }
    if unknown:
        raise CampaignError(
            f"unknown campaign spec keys: {sorted(unknown)!r}"
        )
    experiment_id = data.get("experiment")
    if not isinstance(experiment_id, str) or not experiment_id:
        raise CampaignError("campaign spec needs an 'experiment' id string")
    get_experiment(experiment_id)  # unknown ids raise ParameterError here

    base_params = _require_table(data.get("params"), "params")
    grid = _require_table(data.get("grid"), "grid")
    zip_axes = _require_table(data.get("zip"), "zip")

    for axis_table, kind in ((grid, "grid"), (zip_axes, "zip")):
        for axis, values in axis_table.items():
            if not isinstance(values, list) or not values:
                raise CampaignError(
                    f"{kind} axis {axis!r} must be a non-empty list"
                )
    zip_lengths = {len(values) for values in zip_axes.values()}
    if len(zip_lengths) > 1:
        raise CampaignError(
            "zip axes must all have the same length, got "
            f"{sorted(zip_lengths)!r}"
        )
    overlapping = (set(base_params) & set(grid) | set(base_params) & set(zip_axes)
                   | set(grid) & set(zip_axes))
    if overlapping:
        raise CampaignError(
            f"parameters defined in more than one section: {sorted(overlapping)!r}"
        )

    seeds = _require_table(data.get("seeds"), "seeds")
    seed_parameter: Optional[str] = None
    seed_base = 0
    seed_policy = "spawn"
    if seeds:
        unknown_seed = set(seeds) - {"parameter", "base", "policy"}
        if unknown_seed:
            raise CampaignError(
                f"unknown seeds keys: {sorted(unknown_seed)!r}"
            )
        seed_parameter = seeds.get("parameter", "seed")
        if not isinstance(seed_parameter, str) or not seed_parameter:
            raise CampaignError("seeds.parameter must be a parameter name")
        if seed_parameter in grid or seed_parameter in zip_axes:
            raise CampaignError(
                f"seeds.parameter {seed_parameter!r} also appears as a "
                "sweep axis; pick one mechanism"
            )
        seed_base = seeds.get("base", 0)
        if (
            not isinstance(seed_base, int)
            or isinstance(seed_base, bool)
            or seed_base < 0
        ):
            raise CampaignError("seeds.base must be an integer >= 0")
        seed_policy = seeds.get("policy", "spawn")
        if seed_policy not in SEED_POLICIES:
            raise CampaignError(
                f"seeds.policy must be one of {SEED_POLICIES}, "
                f"got {seed_policy!r}"
            )

    jobs = data.get("jobs")
    if jobs is not None and (
        not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 0
    ):
        raise CampaignError(f"jobs must be an integer >= 0, got {jobs!r}")

    backend = data.get("backend")
    if backend is not None:
        if not isinstance(backend, str) or not backend:
            raise CampaignError(
                f"backend must be a backend name string, got {backend!r}"
            )
        try:
            # Registered names only; availability is checked at run time
            # (an unavailable backend falls back to numpy with a warning).
            get_backend(backend)
        except BackendError as error:
            raise CampaignError(str(error)) from error

    spec_name = data.get("name", name)
    if spec_name is None:
        spec_name = experiment_id
    if not isinstance(spec_name, str) or not spec_name:
        raise CampaignError("campaign name must be a non-empty string")

    return CampaignSpec(
        name=spec_name,
        experiment_id=experiment_id,
        base_params=base_params,
        grid=grid,
        zip_axes=zip_axes,
        seed_parameter=seed_parameter,
        seed_base=seed_base,
        seed_policy=seed_policy,
        jobs=jobs,
        backend=backend,
    )


def load_spec(path: Union[str, Path]) -> CampaignSpec:
    """Load a campaign spec from a ``.toml`` or ``.json`` file."""
    source = Path(path)
    if not source.is_file():
        raise CampaignError(f"campaign spec not found: {source}")
    suffix = source.suffix.lower()
    if suffix == ".json":
        try:
            data = json.loads(source.read_text())
        except json.JSONDecodeError as error:
            raise CampaignError(
                f"campaign spec {source} is not valid JSON: {error}"
            ) from error
    elif suffix == ".toml":
        if sys.version_info < (3, 11):  # pragma: no cover - py>=3.11 in CI 3.12
            raise CampaignError(
                "TOML campaign specs need Python >= 3.11 (tomllib); "
                "use a JSON spec on older interpreters"
            )
        import tomllib

        try:
            data = tomllib.loads(source.read_text())
        except tomllib.TOMLDecodeError as error:
            raise CampaignError(
                f"campaign spec {source} is not valid TOML: {error}"
            ) from error
    else:
        raise CampaignError(
            f"campaign spec must be .toml or .json, got {source.name!r}"
        )
    return spec_from_dict(data, name=source.stem)


def _task_seed(policy: str, base: int, index: int) -> int:
    """Deterministic per-task seed for one policy (pure in base+index)."""
    if policy == "fixed":
        return base
    if policy == "sequential":
        return base + index
    # "spawn": a SeedSequence child keyed by the task index - independent
    # streams with the same guarantee the parallel runner relies on.
    child = np.random.SeedSequence(base, spawn_key=(index,))
    return int(child.generate_state(1, np.uint64)[0])


def expand_tasks(spec: CampaignSpec) -> List[CampaignTask]:
    """Expand a spec into its deterministic, digest-addressed task list."""
    grid_axes = list(spec.grid)
    grid_product: List[Tuple[Any, ...]] = list(
        itertools.product(*(spec.grid[axis] for axis in grid_axes))
    )
    zip_rows: List[Dict[str, Any]]
    if spec.zip_axes:
        length = len(next(iter(spec.zip_axes.values())))
        zip_rows = [
            {axis: values[row] for axis, values in spec.zip_axes.items()}
            for row in range(length)
        ]
    else:
        zip_rows = [{}]

    tasks: List[CampaignTask] = []
    for combo in grid_product:
        for zipped in zip_rows:
            params = dict(spec.base_params)
            params.update(zip(grid_axes, combo))
            params.update(zipped)
            index = len(tasks)
            if spec.seed_parameter is not None:
                params[spec.seed_parameter] = _task_seed(
                    spec.seed_policy, spec.seed_base, index
                )
            tasks.append(
                CampaignTask(
                    index=index,
                    experiment_id=spec.experiment_id,
                    params=params,
                    digest=compute_digest(spec.experiment_id, params),
                )
            )
    return tasks
