"""Declarative sweep campaigns over the experiment registry.

* :mod:`repro.campaign.spec` - TOML/JSON campaign documents, validation
  and deterministic expansion into digest-addressed tasks.
* :mod:`repro.campaign.engine` - cache-aware execution through
  :mod:`repro.experiments.parallel` with per-task commits to
  :mod:`repro.store`, giving exact SIGINT-resume semantics.

See ``docs/store_and_campaigns.md`` for the spec schema and examples.
"""

from repro.campaign.engine import (
    CampaignReport,
    TaskOutcome,
    campaign_status,
    parse_shard,
    run_campaign,
)
from repro.campaign.spec import (
    SEED_POLICIES,
    CampaignSpec,
    CampaignTask,
    expand_tasks,
    load_spec,
    spec_from_dict,
)

__all__ = [
    "SEED_POLICIES",
    "CampaignReport",
    "CampaignSpec",
    "CampaignTask",
    "TaskOutcome",
    "campaign_status",
    "expand_tasks",
    "load_spec",
    "parse_shard",
    "run_campaign",
    "spec_from_dict",
]
