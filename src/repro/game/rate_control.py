"""Selfish rate control - the extension the paper's conclusion proposes.

The conclusion of the paper states that its framework "can be extended to
model other selfish behaviors such as rate control by redefining the
proper utility function".  This module performs that extension for PHY
bit-rate selection on top of the settled CW game:

* all nodes share the contention window (the CW game of Sections IV-V
  has already converged, typically to ``W_c*``), so the backoff fixed
  point ``(tau, p)`` is common;
* each node ``i`` additionally picks a bit-rate ``r_i`` from a discrete
  set.  A higher rate shortens its payload airtime but lowers its
  per-packet delivery probability ``q(r)`` (channel-quality trade-off);
* the utility redefines the paper's with rate-dependent gain and airtime:

  ``u_i = tau (1 - p) q(r_i) g / T_slot(r_1..r_n)  -  tau e_i / T_slot``

  where ``T_slot`` now depends on *everyone's* airtime: a successful
  slot by node ``j`` occupies the channel for ``Ts(r_j)``.

The game exposes the famous 802.11 *performance anomaly* as an
externality: a node lowering its rate inflates every slot it wins, and
that cost is shared by all ``n`` players while the reliability gain
``q`` is private.  Selfish best responses therefore sit at rates no
faster than the social optimum - with reliability curves that decay
mildly, strictly slower - and the game quantifies the resulting price
of anarchy.  (This is the mechanism behind [Tan & Guttag 2005]'s
"inefficient equilibria" cited in the paper's related work.)

Collision pricing: a collision lasts as long as its longest frame; we
use the standard conservative approximation of pricing collisions at
the airtime of the *slowest rate currently in use*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.typealiases import FloatArray
from repro.errors import GameDefinitionError, ParameterError
from repro.bianchi.fixedpoint import solve_symmetric
from repro.phy.parameters import AccessMode, PhyParameters
from repro.phy.timing import slot_times

__all__ = [
    "RateControlGame",
    "RateControlEquilibrium",
    "RateOption",
    "default_rate_options",
]


@dataclass(frozen=True)
class RateOption:
    """One selectable PHY rate.

    Attributes
    ----------
    bit_rate:
        PHY payload rate in bits per second.
    delivery_probability:
        Per-packet delivery probability ``q(r)`` at this rate for the
        operating channel (monotone decreasing in ``bit_rate`` for a
        fixed link budget).
    label:
        Human-readable name.
    """

    bit_rate: float
    delivery_probability: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.bit_rate <= 0:
            raise ParameterError(
                f"bit_rate must be positive, got {self.bit_rate!r}"
            )
        if not 0.0 < self.delivery_probability <= 1.0:
            raise ParameterError(
                "delivery_probability must lie in (0, 1], got "
                f"{self.delivery_probability!r}"
            )


def default_rate_options() -> List[RateOption]:
    """An 802.11b-flavoured ladder with a mid-range link budget.

    Delivery probabilities follow a smooth SNR-margin decay: the base
    rate is nearly loss-free, the top rate markedly lossy - the regime
    where the selfish/social tension is visible.
    """
    return [
        RateOption(1e6, 0.98, "1 Mb/s"),
        RateOption(2e6, 0.95, "2 Mb/s"),
        RateOption(5.5e6, 0.87, "5.5 Mb/s"),
        RateOption(11e6, 0.72, "11 Mb/s"),
    ]


@dataclass(frozen=True)
class RateControlEquilibrium:
    """Outcome of the rate-control analysis.

    Attributes
    ----------
    nash_profile:
        Option index per player at the found pure NE.
    nash_welfare:
        Social welfare (sum of utilities) at the NE.
    social_profile:
        Option indices of the welfare-maximising *symmetric* profile.
    social_welfare:
        Welfare at that profile.
    price_of_anarchy:
        ``social_welfare / nash_welfare`` (>= 1 when a NE exists and
        welfare is positive).
    iterations:
        Best-response sweeps used to reach the NE.
    """

    nash_profile: Tuple[int, ...]
    nash_welfare: float
    social_profile: Tuple[int, ...]
    social_welfare: float
    price_of_anarchy: float
    iterations: int


class RateControlGame:
    """The selfish rate-selection game at a settled contention window.

    Parameters
    ----------
    n_players:
        Network size (>= 2).
    params:
        PHY/MAC constants; per-rate airtimes derive from its frame
        sizes.  Headers and control frames stay at the base
        ``params.channel_bit_rate`` (as in real 802.11, where PLCP and
        control frames use the basic rate).
    common_window:
        The CW every node operates on (normally ``W_c*`` from the CW
        game).
    options:
        The selectable rate ladder.
    mode:
        Channel access mechanism.
    energy_per_us:
        Transmit energy cost per microsecond of airtime, in units of
        the paper's ``e`` per ``Tc``-equivalent; the paper's flat ``e``
        is recovered with rate-independent airtime.
    """

    def __init__(
        self,
        n_players: int,
        params: PhyParameters,
        common_window: int,
        *,
        options: Optional[Sequence[RateOption]] = None,
        mode: AccessMode = AccessMode.BASIC,
        energy_per_us: float = 0.0,
    ) -> None:
        if n_players < 2:
            raise GameDefinitionError(
                f"n_players must be >= 2, got {n_players!r}"
            )
        if common_window < 1:
            raise GameDefinitionError(
                f"common_window must be >= 1, got {common_window!r}"
            )
        if energy_per_us < 0:
            raise GameDefinitionError(
                f"energy_per_us must be >= 0, got {energy_per_us!r}"
            )
        self.n_players = n_players
        self.params = params
        self.common_window = int(common_window)
        self.options = list(options) if options is not None else default_rate_options()
        if len(self.options) < 2:
            raise GameDefinitionError("need at least two rate options")
        self.mode = mode
        self.energy_per_us = energy_per_us

        self._times = slot_times(params, mode)
        solution = solve_symmetric(
            self.common_window, n_players, params.max_backoff_stage
        )
        self.tau = solution.tau
        self.collision = solution.collision

        # Per-option airtimes: payload scales with the rate; headers,
        # ACK/RTS/CTS and IFS stay at base-rate timing.
        base_payload = params.payload_time_us
        self._payload_us = [
            base_payload * params.channel_bit_rate / option.bit_rate
            for option in self.options
        ]
        base_rate_payload = params.payload_time_us
        self._success_us = [
            self._times.success_us - base_rate_payload + payload
            for payload in self._payload_us
        ]
        self._collision_base_us = (
            self._times.collision_us - base_rate_payload
        )

    # ------------------------------------------------------------------
    def _validate_profile(self, profile: Sequence[int]) -> List[int]:
        indices = [int(i) for i in profile]
        if len(indices) != self.n_players:
            raise GameDefinitionError(
                f"profile must have {self.n_players} entries, got "
                f"{len(indices)}"
            )
        for index in indices:
            if not 0 <= index < len(self.options):
                raise GameDefinitionError(
                    f"option index {index!r} out of range "
                    f"[0, {len(self.options)})"
                )
        return indices

    def _airtime_profile(self, profile: Sequence[int]) -> Tuple[FloatArray, float]:
        indices = self._validate_profile(profile)
        success = np.array([self._success_us[i] for i in indices])
        if self.mode is AccessMode.RTS_CTS:
            # RTS collisions never carry payload: rate-independent.
            collision = self._times.collision_us
        else:
            slowest = max(self._payload_us[i] for i in indices)
            collision = self._collision_base_us + slowest
        return success, collision

    def expected_slot_us(self, profile: Sequence[int]) -> float:
        """``T_slot`` for a rate profile at the common backoff point."""
        success_us, collision_us = self._airtime_profile(profile)
        n, tau = self.n_players, self.tau
        one_minus = 1.0 - tau
        p_idle = one_minus**n
        per_node_success = tau * one_minus ** (n - 1)
        p_any = 1.0 - p_idle
        p_single_total = n * per_node_success
        return (
            p_idle * self._times.idle_us
            + per_node_success * float(success_us.sum())
            + (p_any - p_single_total) * collision_us
        )

    def utilities(self, profile: Sequence[int]) -> FloatArray:
        """Per-player utility rates for a rate profile."""
        indices = self._validate_profile(profile)
        tslot = self.expected_slot_us(profile)
        q = np.array(
            [self.options[i].delivery_probability for i in indices]
        )
        airtime = np.array([self._success_us[i] for i in indices])
        gain = self.tau * (1.0 - self.collision) * q * self.params.gain
        energy = self.tau * (
            self.params.cost + self.energy_per_us * airtime
        )
        return (gain - energy) / tslot

    def welfare(self, profile: Sequence[int]) -> float:
        """Social welfare: sum of utilities."""
        return float(self.utilities(profile).sum())

    # ------------------------------------------------------------------
    def best_response(self, player: int, profile: Sequence[int]) -> int:
        """Player's utility-maximising option against a fixed profile."""
        if not 0 <= player < self.n_players:
            raise GameDefinitionError(f"player {player!r} out of range")
        base = self._validate_profile(profile)
        best_index, best_value = base[player], float("-inf")
        for candidate in range(len(self.options)):
            trial = list(base)
            trial[player] = candidate
            value = float(self.utilities(trial)[player])
            if value > best_value + 1e-18:
                best_index, best_value = candidate, value
        return best_index

    def is_nash(self, profile: Sequence[int]) -> bool:
        """Whether no player can gain by switching rate unilaterally."""
        base = self._validate_profile(profile)
        for player in range(self.n_players):
            current = float(self.utilities(base)[player])
            for candidate in range(len(self.options)):
                if candidate == base[player]:
                    continue
                trial = list(base)
                trial[player] = candidate
                if float(self.utilities(trial)[player]) > current + 1e-15:
                    return False
        return True

    def solve(
        self,
        *,
        initial_profile: Optional[Sequence[int]] = None,
        max_sweeps: int = 100,
    ) -> RateControlEquilibrium:
        """Find a pure NE by best-response dynamics + the social optimum.

        Best-response sweeps converge here because the symmetric game
        is a congestion-style game in the shared slot time; a safety
        bound guards pathological option sets.  The game can have
        *several* pure NEs (my best rate depends on the slot time set by
        everyone else's rates), so the returned equilibrium depends on
        ``initial_profile``; the default starts from the fastest ladder
        rung, which is the natural initial configuration of greedy
        stations.
        """
        profile = (
            list(self._validate_profile(initial_profile))
            if initial_profile is not None
            else [len(self.options) - 1] * self.n_players
        )
        iterations = 0
        for iterations in range(1, max_sweeps + 1):
            changed = False
            for player in range(self.n_players):
                response = self.best_response(player, profile)
                if response != profile[player]:
                    profile[player] = response
                    changed = True
            if not changed:
                break
        else:
            raise GameDefinitionError(
                f"best-response dynamics did not settle in {max_sweeps} "
                "sweeps"
            )

        # Symmetric social optimum (the welfare-maximising common rate).
        best_social, best_welfare = 0, float("-inf")
        for candidate in range(len(self.options)):
            value = self.welfare([candidate] * self.n_players)
            if value > best_welfare:
                best_social, best_welfare = candidate, value
        nash_welfare = self.welfare(profile)
        poa = (
            best_welfare / nash_welfare
            if nash_welfare > 0
            else float("inf")
        )
        return RateControlEquilibrium(
            nash_profile=tuple(profile),
            nash_welfare=nash_welfare,
            social_profile=tuple([best_social] * self.n_players),
            social_welfare=best_welfare,
            price_of_anarchy=poa,
            iterations=iterations,
        )
