"""Replicator dynamics of contention-window strategies over populations.

The single-population question behind Sections IV-V, asked at scale:
if a population of ``n`` nodes is split across K contention-window
*types* and strategies spread by imitation of success - the share of a
type grows with its fitness - where does the population end up?  The
state is the share vector ``x`` on the simplex; one step is the
discrete-time replicator (multiplicative-weights) update

``x_k' = x_k exp(eta u_k) / sum_j x_j exp(eta u_j)``,

the exponential form staying well-defined for the negative utilities an
over-aggressive population produces.  Fitness comes from the mean-field
solver (:mod:`repro.bianchi.meanfield`), so each step costs O(K)
regardless of the population size - a million-node population evolves
as cheaply as a ten-node one.

Two fitness models bracket the paper's story:

``"stage"``
    Myopic: fitness is the current mean-field stage utility of the
    type.  More aggressive (smaller-``W``) types always beat the field,
    so the population ratchets toward the most aggressive type present
    and collapses into the tragedy of the commons - the dynamic version
    of the Section IV observation that ``W -> cw_min`` dominates the
    one-shot game.

``"tft"``
    Forward-looking under TFT/GTFT enforcement (Section V): a node of
    type ``k`` anticipates the population copying its window, so its
    discounted fitness mixes the myopic stage utility with the
    *symmetric* payoff of its own window,
    ``u_k = (1 - delta) stage_k + delta sym(W_k)``.  With the paper's
    ``delta -> 1`` the symmetric term dominates and the replicator
    climbs the symmetric-utility curve - converging into the Theorem 2
    NE family ``[W_c0, W_c*]`` (pinned on the Table II parameter set by
    ``tests/unit/test_game_dynamics.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.typealiases import FloatArray
from repro.contracts import check_probability, checks_enabled
from repro.errors import ParameterError
from repro.obs import enabled as _obs_enabled
from repro.obs.metrics import inc as _obs_inc
from repro.obs.metrics import observe as _obs_observe
from repro.bianchi.meanfield import solve_mean_field_batch
from repro.game.equilibrium import EquilibriumAnalysis, analyze_equilibria
from repro.game.utility import symmetric_stage_utility
from repro.phy.parameters import PhyParameters
from repro.phy.timing import SlotTimes

__all__ = [
    "ReplicatorTrajectory",
    "replicator_step",
    "run_replicator",
    "converges_to_ne",
]

#: Cache-entering analysis roots for ``repro.lint --deep`` (REPRO101):
#: replicator trajectories land in experiment results and the store, so
#: the whole update loop must be effect-free.
ANALYSIS_ROOTS = ("repro.game.dynamics.run_replicator",)

_FITNESS_MODES = ("stage", "tft")

#: Shares below this fraction are treated as extinct: they stop
#: receiving fitness evaluations (the mean-field solver needs positive
#: counts) and are frozen at zero mass.
_EXTINCT = 1e-12


@dataclass(frozen=True)
class ReplicatorTrajectory:
    """One replicator run over a fixed strategy grid.

    Attributes
    ----------
    type_windows:
        The K candidate windows, shape ``(K,)``.
    population:
        Total node count ``n`` (constant along the trajectory).
    fitness_mode:
        ``"stage"`` or ``"tft"``.
    shares:
        Share trajectory, shape ``(T + 1, K)``; row 0 is the initial
        distribution, each row sums to 1.
    fitness:
        Per-step fitness (utility rate) per type, shape ``(T, K)``.
    iterations:
        Steps actually taken (``T``).
    converged:
        Whether the update reached the share tolerance before the step
        budget ran out.
    dominant_window:
        Window of the highest-share type in the final state.
    """

    type_windows: FloatArray
    population: float
    fitness_mode: str
    shares: FloatArray
    fitness: FloatArray
    iterations: int
    converged: bool
    dominant_window: float

    @property
    def final_shares(self) -> FloatArray:
        """Last row of :attr:`shares`."""
        return self.shares[-1]


def replicator_step(
    shares: FloatArray,
    fitness: FloatArray,
    *,
    learning_rate: float = 1.0,
) -> FloatArray:
    """One exponential replicator update on the simplex.

    ``x_k' propto x_k exp(eta u_k)`` with the fitness max-shifted before
    exponentiation, so the update is invariant to payoff translation and
    immune to overflow.  Extinct entries (share 0) stay extinct.
    """
    x = np.asarray(shares, dtype=float)
    u = np.asarray(fitness, dtype=float)
    if x.shape != u.shape or x.ndim != 1:
        raise ParameterError(
            "shares and fitness must be matching 1-D vectors, got "
            f"{x.shape!r} and {u.shape!r}"
        )
    if learning_rate <= 0:
        raise ParameterError(
            f"learning_rate must be positive, got {learning_rate!r}"
        )
    alive = x > 0.0
    if not np.any(alive):
        raise ParameterError("all types are extinct; nothing to update")
    shifted = u - u[alive].max()
    weights = np.where(alive, x * np.exp(learning_rate * shifted), 0.0)
    total = weights.sum()
    if total <= 0.0:  # pragma: no cover - exp underflow of every live type
        return x
    return weights / total


def run_replicator(
    type_windows: Union[Sequence[float], FloatArray],
    n_nodes: int,
    params: PhyParameters,
    times: SlotTimes,
    *,
    fitness_mode: str = "tft",
    initial_shares: Optional[Union[Sequence[float], FloatArray]] = None,
    steps: int = 2_000,
    learning_rate: Optional[float] = None,
    tol: float = 1e-10,
) -> ReplicatorTrajectory:
    """Evolve the CW-type distribution to a rest point.

    Parameters
    ----------
    type_windows:
        The K candidate windows (the strategy grid).
    n_nodes:
        Total population size; per-type counts are ``n x_k``.
    params, times:
        Model constants and slot durations (fitness units).
    fitness_mode:
        ``"stage"`` (myopic - collapses to aggression) or ``"tft"``
        (TFT-enforced discounted fitness - converges into the Theorem 2
        NE family).  See the module docstring.
    initial_shares:
        Starting distribution; uniform when omitted.  Must be
        non-negative and sum to 1.
    steps:
        Step budget.
    learning_rate:
        Update gain ``eta``.  Defaults to ``1 / (max u_0 - min u_0)``
        measured on the first step's fitness, so one step moves the
        best-vs-worst odds by a factor ``e`` whatever the utility
        units.
    tol:
        Rest-point tolerance on the max share change per step.
    """
    w = np.asarray(type_windows, dtype=float)
    if w.ndim != 1 or w.shape[0] < 1:
        raise ParameterError(
            f"type_windows must be a non-empty 1-D vector, got {w!r}"
        )
    if n_nodes < 2:
        raise ParameterError(
            f"replicator dynamics needs n_nodes >= 2, got {n_nodes!r}"
        )
    if fitness_mode not in _FITNESS_MODES:
        raise ParameterError(
            f"fitness_mode must be one of {_FITNESS_MODES}, "
            f"got {fitness_mode!r}"
        )
    if steps < 1:
        raise ParameterError(f"steps must be >= 1, got {steps!r}")
    k = w.shape[0]
    if initial_shares is None:
        x = np.full(k, 1.0 / k)
    else:
        x = np.asarray(initial_shares, dtype=float)
        if x.shape != w.shape:
            raise ParameterError(
                f"initial_shares shape {x.shape!r} must match "
                f"type_windows shape {w.shape!r}"
            )
        if np.any(x < 0.0) or abs(float(x.sum()) - 1.0) > 1e-9:
            raise ParameterError(
                "initial_shares must be non-negative and sum to 1, "
                f"got {x!r}"
            )
        x = x / x.sum()

    # The TFT continuation payoff of window W_k is the symmetric payoff
    # of the whole population playing W_k - fixed along the trajectory,
    # so compute the K values once.
    if fitness_mode == "tft":
        symmetric = np.array(
            [
                symmetric_stage_utility(float(wk), n_nodes, params, times)
                for wk in w
            ]
        )
        delta = params.discount_factor
    else:
        symmetric = np.zeros(k)
        delta = 0.0

    shares_path = [x.copy()]
    fitness_path = []
    eta = learning_rate
    converged = False
    iterations = 0
    for _step in range(steps):
        alive = x > _EXTINCT
        counts = n_nodes * x[alive]
        solution = solve_mean_field_batch(
            w[alive][None, :],
            counts[None, :],
            params.max_backoff_stage,
        )
        tau = solution.tau[0]
        p = solution.collision[0]
        log_idle = float((counts * np.log1p(-tau)).sum())
        p_idle = float(np.exp(log_idle))
        p_single = float((counts * tau * (1.0 - p)).sum())
        expected_slot = (
            p_idle * times.idle_us
            + p_single * times.success_us
            + ((1.0 - p_idle) - p_single) * times.collision_us
        )
        stage = tau * ((1.0 - p) * params.gain - params.cost) / expected_slot
        fitness = np.zeros(k)
        fitness[alive] = (1.0 - delta) * stage + delta * symmetric[alive]
        fitness_path.append(fitness)
        if eta is None:
            live = fitness[alive]
            scale = float(live.max() - live.min())
            if scale <= 0.0:
                scale = float(np.max(np.abs(live)))
            eta = 1.0 / scale if scale > 0.0 else 1.0
        x_next = replicator_step(
            np.where(alive, x, 0.0), fitness, learning_rate=eta
        )
        iterations = _step + 1
        delta_x = float(np.max(np.abs(x_next - x)))
        x = x_next
        shares_path.append(x.copy())
        if delta_x < tol:
            converged = True
            break

    shares = np.vstack(shares_path)
    if checks_enabled():
        check_probability(shares, "shares")
    dominant = float(w[int(np.argmax(x))])
    if _obs_enabled():
        _obs_inc("game.replicator.runs", 1, mode=fitness_mode)
        _obs_observe("game.replicator.steps", iterations, mode=fitness_mode)
    return ReplicatorTrajectory(
        type_windows=w,
        population=float(n_nodes),
        fitness_mode=fitness_mode,
        shares=shares,
        fitness=(
            np.vstack(fitness_path) if fitness_path else np.zeros((0, k))
        ),
        iterations=iterations,
        converged=converged,
        dominant_window=dominant,
    )


def converges_to_ne(
    trajectory: ReplicatorTrajectory,
    params: PhyParameters,
    times: SlotTimes,
    *,
    analysis: Optional[EquilibriumAnalysis] = None,
    mass: float = 0.99,
) -> bool:
    """Whether a trajectory's surviving mass sits in the Theorem 2 family.

    Checks that at least ``mass`` of the final distribution lies on
    windows inside ``[W_c0, W_c*]`` for the trajectory's population
    size.  Pass a precomputed ``analysis`` to skip the equilibrium
    search (it only depends on ``n`` and the access mode).
    """
    if analysis is None:
        analysis = analyze_equilibria(
            int(trajectory.population), params, times
        )
    lo = float(analysis.window_breakeven)
    hi = float(analysis.window_star)
    inside = (trajectory.type_windows >= lo) & (
        trajectory.type_windows <= hi
    )
    return float(trajectory.final_shares[inside].sum()) >= mass
