"""Stage-game strategies (Section IV and V.D/V.E).

A strategy maps the observed history of contention-window profiles to the
player's next window.  The paper's protagonists:

* :class:`TitForTat` - cooperate first, then match the *minimum* window any
  player used in the previous stage.  This is the paper's tailored TFT: a
  rational player lowers its window whenever somebody else is being more
  aggressive, and never unilaterally raises it.
* :class:`GenerousTitForTat` - the tolerant variant: average each player's
  window over the last ``r0`` stages and only react when some player's
  average undercuts ``beta`` times one's own.
* :class:`ConstantStrategy` - plays a fixed window (building block for
  deviators).
* :class:`ShortSightedStrategy` - the Section V.D deviator: plays an
  aggressive window ``W_s < W_c*`` regardless of history.
* :class:`MaliciousStrategy` - the Section V.E attacker: plays a very small
  window to drag the network down.
* :class:`BestResponseStrategy` - myopic best response to the previous
  profile; included to reproduce the collapse dynamics that short-sighted
  self-optimisation causes.

Strategies are deliberately stateless between calls: everything they need
arrives in the observed history, which makes them trivially reusable across
engines (analytic and simulation-backed).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.typealiases import FloatArray
from repro.errors import StrategyError
from repro.game.definition import MACGame

__all__ = [
    "BestResponseStrategy",
    "ConstantStrategy",
    "GenerousTitForTat",
    "MaliciousStrategy",
    "ShortSightedStrategy",
    "Strategy",
    "TitForTat",
]


class Strategy(abc.ABC):
    """A deterministic stage strategy for one player.

    Subclasses implement :meth:`next_window`.  The engine calls it once per
    stage with the full observed history of window profiles (stage 0 uses
    the player's configured initial window instead).
    """

    @abc.abstractmethod
    def next_window(
        self,
        player: int,
        history: Sequence[FloatArray],
        game: MACGame,
    ) -> int:
        """Choose the window for the coming stage.

        Parameters
        ----------
        player:
            Index of the deciding player.
        history:
            Observed window profiles of all past stages, oldest first;
            ``history[-1]`` is the previous stage.  Never empty.
        game:
            The game being played (strategy space, constants).

        Returns
        -------
        int
            The window for the next stage, inside the strategy space.
        """

    def _clamp(self, window: float, game: MACGame) -> int:
        lo, hi = game.params.cw_min, game.params.cw_max
        return int(min(max(round(window), lo), hi))

    def _require_history(self, history: Sequence[FloatArray]) -> None:
        if not history:
            raise StrategyError(
                f"{type(self).__name__}.next_window needs at least one "
                "observed stage"
            )


class TitForTat(Strategy):
    """The paper's TFT: match the minimum window of the previous stage.

    Cooperation in stage 0 is expressed through the engine's initial
    window; from stage 1 on the player sets
    ``W_i^k = min_j W_j^{k-1}``.
    """

    def next_window(
        self,
        player: int,
        history: Sequence[FloatArray],
        game: MACGame,
    ) -> int:
        self._require_history(history)
        return self._clamp(float(np.min(history[-1])), game)


class GenerousTitForTat(Strategy):
    """Generous TFT with memory ``r0`` and tolerance ``beta`` (Section IV).

    Each stage the player averages every player's window over the last
    ``r0`` observed stages.  If some player ``l`` has
    ``mean_W_l < beta * mean_W_i`` the player reacts exactly like TFT
    (drops to the previous stage's minimum); otherwise it repeats its own
    previous window.

    Parameters
    ----------
    memory:
        ``r0 >= 1``, the number of past stages averaged.
    tolerance:
        ``beta`` in ``(0, 1]``, close to 1; smaller values are more
        forgiving.
    """

    def __init__(self, memory: int = 3, tolerance: float = 0.9) -> None:
        if memory < 1:
            raise StrategyError(f"memory must be >= 1, got {memory!r}")
        if not 0.0 < tolerance <= 1.0:
            raise StrategyError(
                f"tolerance must lie in (0, 1], got {tolerance!r}"
            )
        self.memory = memory
        self.tolerance = tolerance

    def next_window(
        self,
        player: int,
        history: Sequence[FloatArray],
        game: MACGame,
    ) -> int:
        self._require_history(history)
        recent = np.stack(history[-self.memory:])
        means = recent.mean(axis=0)
        own_mean = means[player]
        others = np.delete(means, player)
        if np.any(others < self.tolerance * own_mean):
            return self._clamp(float(np.min(history[-1])), game)
        return self._clamp(float(history[-1][player]), game)


class ConstantStrategy(Strategy):
    """Always play one fixed window, ignoring history."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise StrategyError(f"window must be >= 1, got {window!r}")
        self.window = int(window)

    def next_window(
        self,
        player: int,
        history: Sequence[FloatArray],
        game: MACGame,
    ) -> int:
        return self._clamp(self.window, game)


class ShortSightedStrategy(ConstantStrategy):
    """The Section V.D deviator: a constant aggressive window.

    Semantically identical to :class:`ConstantStrategy`; the separate type
    documents intent (``window`` is meant to undercut ``W_c*``) and lets
    experiments tell deviators apart from honest constants.
    """


class MaliciousStrategy(ConstantStrategy):
    """The Section V.E attacker: a very small constant window.

    Unlike the short-sighted player, the attacker does not optimise its own
    payoff - it accepts a negative payoff to paralyse the network.
    """

    def __init__(self, window: int = 2) -> None:
        super().__init__(window)


class BestResponseStrategy(Strategy):
    """Myopic best response to the previous stage's profile.

    Each stage the player assumes the opponents repeat their last windows
    and picks the window maximising its *own stage payoff* against that
    profile.  This is the behaviour [Cagalj et al. 2005] show collapses the
    network, reproduced here for the Section VIII comparison.

    Parameters
    ----------
    candidates:
        Windows to evaluate.  Defaults to a coarse geometric grid over the
        strategy space (exact best response needs one fixed-point solve
        per candidate, so a full scan would be wasteful).
    """

    def __init__(self, candidates: Optional[Sequence[int]] = None) -> None:
        self.candidates = (
            None if candidates is None else sorted({int(c) for c in candidates})
        )

    def _grid(self, game: MACGame) -> Sequence[int]:
        if self.candidates is not None:
            return self.candidates
        lo, hi = game.params.cw_min, game.params.cw_max
        grid = set()
        value = max(lo, 1)
        while value < hi:
            grid.add(int(value))
            value = max(value + 1, int(value * 1.3))
        grid.add(hi)
        return sorted(grid)

    def next_window(
        self,
        player: int,
        history: Sequence[FloatArray],
        game: MACGame,
    ) -> int:
        self._require_history(history)
        last = history[-1].astype(float).copy()
        candidates = list(self._grid(game))
        # All candidate profiles differ only in this player's window: one
        # batched fixed-point solve scans the entire grid.
        profiles = np.tile(last, (len(candidates), 1))
        profiles[:, player] = candidates
        outcomes = game.stage_batch(profiles)
        payoffs = np.array(
            [float(outcome.utilities[player]) for outcome in outcomes]
        )
        # np.argmax takes the first maximiser - the same tie-break as the
        # scalar scan's strict-improvement loop.
        best_window = candidates[int(np.argmax(payoffs))]
        return self._clamp(best_window, game)
