"""Symmetric Nash equilibria of the MAC game (Section V, Lemma 3, Theorem 2).

After TFT convergence every player uses the same contention window ``W_c``,
so the equilibrium analysis reduces to a one-dimensional problem in the
common transmission probability ``tau_c``:

* **Stationarity (Lemma 3).**  With ``g >> e`` the symmetric utility
  ``U_i(tau_c)`` has a unique interior maximiser ``tau_c*``, the root of

  ``Q(tau) = (1-tau)^n sigma
           + Tc [ (1 - n tau)(1 - (1-tau)^n - n tau (1-tau)^{n-1})
                  - n (n-1) tau^2 (1-tau)^{n-1} ]``

  (re-derived exactly; ``Ts`` cancels from the first-order condition, so
  only ``sigma`` and ``Tc`` appear).  ``Q`` satisfies ``Q(0) = sigma > 0``
  and ``Q(1) = -(n-1) Tc < 0`` and is strictly decreasing in between.

* **Efficient NE.**  ``W_c*`` is the integer window whose symmetric fixed
  point maximises the symmetric utility; Tables II and III report it for
  ``n in {5, 20, 50}``.

* **NE interval (Theorem 2).**  Every symmetric profile ``(W_c,...,W_c)``
  with ``W_c0 <= W_c <= W_c*`` is a NE, where ``W_c0`` is the break-even
  window below which the stage payoff turns negative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
from scipy import optimize

from repro.contracts import check_interval, check_probability, checks_enabled
from repro.errors import ConvergenceError, ParameterError
from repro.typealiases import FloatArray
from repro.bianchi.fixedpoint import solve_symmetric
from repro.bianchi.markov import _geometric_sum
from repro.game.utility import symmetric_utility_curve, symmetric_utility_from_tau
from repro.phy.parameters import PhyParameters
from repro.phy.timing import SlotTimes

__all__ = [
    "EquilibriumAnalysis",
    "analyze_equilibria",
    "breakeven_window",
    "efficient_window",
    "is_symmetric_equilibrium",
    "optimal_tau",
    "q_function",
    "window_for_tau",
]


def q_function(tau: float, n_nodes: int, times: SlotTimes) -> float:
    """The stationarity function ``Q(tau)`` of Lemma 3 (exact form).

    ``Q(tau) = 0`` is the first-order condition of the symmetric utility
    under the ``g >> e`` approximation; ``Ts`` cancels exactly, leaving
    only ``sigma`` and ``Tc``.

    Parameters
    ----------
    tau:
        Common transmission probability, in ``[0, 1]``.
    n_nodes:
        Network size ``n >= 2``.
    times:
        Slot durations (only ``idle_us`` and ``collision_us`` are used).
    """
    check_probability(tau, "tau", tol=0.0)
    if n_nodes < 2:
        raise ParameterError(f"n_nodes must be >= 2, got {n_nodes!r}")
    n = n_nodes
    one_minus = 1.0 - tau
    pow_n = one_minus**n
    pow_n1 = one_minus ** (n - 1)
    bracket = (1.0 - n * tau) * (1.0 - pow_n - n * tau * pow_n1) - n * (
        n - 1
    ) * tau**2 * pow_n1
    return pow_n * times.idle_us + times.collision_us * bracket


def optimal_tau(
    n_nodes: int,
    times: SlotTimes,
    *,
    params: Optional[PhyParameters] = None,
    method: str = "q",
    ignore_cost: bool = True,
) -> float:
    """The optimal common transmission probability ``tau_c*`` (Lemma 3).

    Parameters
    ----------
    n_nodes:
        Network size ``n >= 2``.
    times:
        Slot durations for the access mode.
    params:
        Required for ``method="direct"`` (supplies ``g`` and ``e``).
    method:
        ``"q"`` finds the root of the exact stationarity function (the
        paper's Lemma 3, cost term dropped); ``"direct"`` numerically
        maximises the symmetric utility and honours ``ignore_cost``.
    ignore_cost:
        Only used with ``method="direct"``.

    Returns
    -------
    float
        ``tau_c*`` in ``(0, 1)``.
    """
    if n_nodes < 2:
        raise ParameterError(f"n_nodes must be >= 2, got {n_nodes!r}")
    if method == "q":
        lo, hi = 1e-9, 1.0 - 1e-9
        q_lo = q_function(lo, n_nodes, times)
        q_hi = q_function(hi, n_nodes, times)
        if q_lo <= 0 or q_hi >= 0:  # pragma: no cover - guarded by theory
            raise ConvergenceError(
                "Q does not bracket a root; check slot times "
                f"(Q({lo})={q_lo!r}, Q({hi})={q_hi!r})"
            )
        return float(
            optimize.brentq(
                lambda t: q_function(t, n_nodes, times), lo, hi, xtol=1e-14
            )
        )
    if method == "direct":
        if params is None:
            raise ParameterError("method='direct' requires params")
        objective: Callable[[float], float] = lambda t: -symmetric_utility_from_tau(
            t, n_nodes, params, times, ignore_cost=ignore_cost
        )
        result = optimize.minimize_scalar(
            objective, bounds=(1e-9, 1.0 - 1e-9), method="bounded",
            options={"xatol": 1e-12},
        )
        if not result.success:  # pragma: no cover - bounded always succeeds
            raise ConvergenceError(f"direct tau optimisation failed: {result}")
        return float(result.x)
    raise ParameterError(f"unknown method {method!r}; use 'q' or 'direct'")


def window_for_tau(
    tau: float, n_nodes: int, max_stage: int
) -> float:
    """Invert the symmetric fixed point: the (real) ``W`` achieving ``tau``.

    At a symmetric fixed point ``p`` is a function of ``tau`` alone,
    ``p = 1 - (1 - tau)^{n-1}``, so equation (2) can be solved for ``W``
    in closed form::

        W = (2 / tau - 1) / (1 + p * sum_{j=0}^{m-1} (2p)^j)

    Parameters
    ----------
    tau:
        Target common transmission probability, in ``(0, 1]``.
    n_nodes:
        Network size.
    max_stage:
        Maximum backoff stage ``m``.

    Returns
    -------
    float
        The real-valued window; may fall below 1 for very aggressive
        ``tau`` (callers clamp to the strategy space).
    """
    if not 0.0 < tau <= 1.0:
        raise ParameterError(f"tau must lie in (0, 1], got {tau!r}")
    if n_nodes < 1:
        raise ParameterError(f"n_nodes must be >= 1, got {n_nodes!r}")
    p = 1.0 - (1.0 - tau) ** (n_nodes - 1)
    series = _geometric_sum(2.0 * p, max_stage)
    return (2.0 / tau - 1.0) / (1.0 + p * series)


def _unimodal_integer_argmax(
    objective: Callable[[int], float], lo: int, hi: int
) -> int:
    """Ternary search for the argmax of a unimodal function on integers.

    Falls back to a local scan of the final bracket so plateaus (the
    utility around ``W_c*`` is extremely flat) resolve deterministically to
    the smallest maximiser.

    This is the legacy scalar search; the production path precomputes the
    whole utility curve with one batched grid solve and replays the same
    decisions on it (:func:`_unimodal_argmax_on_values`).  It is kept as
    the reference implementation the equivalence tests pin against.
    """
    if lo > hi:
        raise ParameterError(f"empty search range [{lo}, {hi}]")
    left, right = lo, hi
    while right - left > 8:
        third = (right - left) // 3
        m1 = left + third
        m2 = right - third
        if objective(m1) < objective(m2):
            left = m1 + 1
        else:
            right = m2
    values = [(objective(w), -w) for w in range(left, right + 1)]
    best_value, neg_w = max(values)
    del best_value
    return -neg_w


def _unimodal_argmax_on_values(values: FloatArray, lo: int, hi: int) -> int:
    """Replay :func:`_unimodal_integer_argmax` on a precomputed curve.

    ``values[k]`` must be the objective at window ``lo + k``.  The
    bracket-narrowing comparisons and the final plateau scan are decision
    for decision the same as the scalar ternary search, so with equal
    objective values the two return identical windows; only the objective
    evaluations are batched away.
    """
    if lo > hi:
        raise ParameterError(f"empty search range [{lo}, {hi}]")
    left, right = 0, hi - lo
    while right - left > 8:
        third = (right - left) // 3
        m1 = left + third
        m2 = right - third
        if values[m1] < values[m2]:
            left = m1 + 1
        else:
            right = m2
    # np.argmax returns the first maximiser, i.e. the smallest window on
    # a float-equal plateau - the same tie-break as max((value, -w)).
    return lo + left + int(np.argmax(values[left : right + 1]))


def efficient_window(
    n_nodes: int,
    params: PhyParameters,
    times: SlotTimes,
    *,
    ignore_cost: bool = True,
) -> int:
    """The efficient NE window ``W_c*`` (Section V.B, Tables II/III).

    Maximises the symmetric per-node utility over integer windows.  The
    continuous candidate from Lemma 3 seeds the search; a unimodal integer
    search settles the final value (the plateau around the optimum is very
    flat, so ties resolve to the smallest window).

    Parameters
    ----------
    n_nodes:
        Network size ``n >= 2``.
    params, times:
        Model constants.
    ignore_cost:
        Use the paper's ``g >> e`` approximation (default, matches the
        published tables).  Set false to keep the energy term.
    """
    tau_star = optimal_tau(
        n_nodes,
        times,
        params=params,
        method="q" if ignore_cost else "direct",
        ignore_cost=ignore_cost,
    )
    w_guess = window_for_tau(tau_star, n_nodes, params.max_backoff_stage)
    lo = max(params.cw_min, int(w_guess * 0.5))
    hi = min(params.cw_max, max(int(w_guess * 2.0) + 4, lo + 8))

    def search(lo: int, hi: int) -> int:
        # One batched grid solve for the whole bracket, then the same
        # unimodal search decisions on the precomputed curve.
        curve = symmetric_utility_curve(
            np.arange(lo, hi + 1, dtype=float),
            n_nodes,
            params,
            times,
            ignore_cost=ignore_cost,
        )
        return _unimodal_argmax_on_values(curve, lo, hi)

    best = search(lo, hi)
    # Guard against a bracket that clipped the optimum.
    while best == hi and hi < params.cw_max:
        lo, hi = hi, min(params.cw_max, hi * 2)
        best = search(lo, hi)
    while best == lo and lo > params.cw_min:
        hi, lo = lo, max(params.cw_min, lo // 2)
        best = search(lo, hi)
    return int(best)


def breakeven_window(
    n_nodes: int, params: PhyParameters, times: SlotTimes
) -> int:
    """The break-even window ``W_c0`` of Theorem 2.

    The smallest window in the strategy space at which the symmetric stage
    payoff is positive, i.e. ``(1 - p) g > e``.  Below it the symmetric
    profile loses energy faster than it earns and is not a NE.

    Returns
    -------
    int
        ``W_c0``; equals ``cw_min`` when the payoff is already positive at
        the bottom of the strategy space.
    """
    if n_nodes < 2:
        raise ParameterError(f"n_nodes must be >= 2, got {n_nodes!r}")

    def payoff(window: int) -> float:
        solution = solve_symmetric(window, n_nodes, params.max_backoff_stage)
        return symmetric_utility_from_tau(
            solution.tau, n_nodes, params, times, ignore_cost=False
        )

    lo, hi = params.cw_min, params.cw_max
    if payoff(lo) > 0:
        return lo
    if payoff(hi) <= 0:
        raise ConvergenceError(
            "symmetric payoff is non-positive on the whole strategy space; "
            "increase cw_max or lower the cost"
        )
    # Payoff is increasing in W below the optimum, so the sign changes
    # exactly once; one batched grid solve over the strategy space finds
    # the first positive window directly (np.argmax on a boolean array
    # returns the first True).
    curve = symmetric_utility_curve(
        np.arange(lo, hi + 1, dtype=float), n_nodes, params, times,
        ignore_cost=False,
    )
    return lo + int(np.argmax(curve > 0))


@dataclass(frozen=True)
class EquilibriumAnalysis:
    """Bundle of the Section V equilibrium quantities for one game.

    Attributes
    ----------
    n_nodes:
        Network size.
    tau_star:
        Optimal common transmission probability ``tau_c*`` (Lemma 3).
    window_star_continuous:
        Real-valued window mapping to ``tau_star``.
    window_star:
        ``W_c*``: the efficient NE window (integer).
    window_breakeven:
        ``W_c0``: smallest window with positive symmetric payoff.
    utility_at_star:
        Per-node utility rate at ``(W_c*, ..., W_c*)`` (cost included).
    n_equilibria:
        Size of the NE family of Theorem 2, ``W_c* - W_c0 + 1``.
    """

    n_nodes: int
    tau_star: float
    window_star_continuous: float
    window_star: int
    window_breakeven: int
    utility_at_star: float
    n_equilibria: int

    @property
    def ne_windows(self) -> range:
        """The symmetric NE family of Theorem 2 as a range of windows."""
        return range(self.window_breakeven, self.window_star + 1)


def analyze_equilibria(
    n_nodes: int,
    params: PhyParameters,
    times: SlotTimes,
    *,
    ignore_cost: bool = True,
) -> EquilibriumAnalysis:
    """Run the full Section V symmetric-equilibrium analysis.

    Computes ``tau_c*``, ``W_c*``, ``W_c0`` and the size of the NE family
    of Theorem 2 for one network size and access mode.
    """
    tau_star = optimal_tau(
        n_nodes,
        times,
        params=params,
        method="q" if ignore_cost else "direct",
        ignore_cost=ignore_cost,
    )
    w_star = efficient_window(n_nodes, params, times, ignore_cost=ignore_cost)
    w_zero = breakeven_window(n_nodes, params, times)
    if w_zero > w_star:
        raise ConvergenceError(
            f"break-even window {w_zero} exceeds efficient window {w_star}; "
            "the NE family of Theorem 2 is empty (cost too high)"
        )
    solution = solve_symmetric(w_star, n_nodes, params.max_backoff_stage)
    utility = symmetric_utility_from_tau(
        solution.tau, n_nodes, params, times, ignore_cost=False
    )
    if checks_enabled():
        # Theorem 2: the NE family is the window interval
        # W_c0 <= W_c <= W_c*, bounded by the strategy space.
        check_probability(tau_star, "tau_star", tol=0.0)
        check_interval(
            w_star, params.cw_min, params.cw_max, "efficient window"
        )
        check_interval(
            w_zero, params.cw_min, w_star, "break-even window"
        )
    return EquilibriumAnalysis(
        n_nodes=n_nodes,
        tau_star=tau_star,
        window_star_continuous=window_for_tau(
            tau_star, n_nodes, params.max_backoff_stage
        ),
        window_star=w_star,
        window_breakeven=w_zero,
        utility_at_star=utility,
        n_equilibria=w_star - w_zero + 1,
    )


def is_symmetric_equilibrium(
    window: int,
    n_nodes: int,
    params: PhyParameters,
    times: SlotTimes,
    *,
    analysis: Optional[EquilibriumAnalysis] = None,
) -> bool:
    """Whether ``(window, ..., window)`` is a NE of ``G`` (Theorem 2).

    True exactly when ``W_c0 <= window <= W_c*``.  Pass a pre-computed
    ``analysis`` to avoid re-solving the model.
    """
    if analysis is None:
        analysis = analyze_equilibria(n_nodes, params, times)
    return analysis.window_breakeven <= window <= analysis.window_star
