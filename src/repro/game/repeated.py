"""Repeated-game engine (Definition 1, played out stage by stage).

The engine advances the multi-stage game: at stage ``k`` every player's
strategy maps the observed history of window profiles to its next window,
the stage is solved through the Bianchi fixed point, and payoffs are
recorded.  Observation can be perfect (the default, as the paper assumes
via [Kyasanur & Vaidya 2003]) or perturbed with bounded integer noise to
exercise the tolerance of GTFT.

The engine caches stage solutions keyed by the (rounded) window profile:
TFT play spends most stages on a converged profile, so the cache turns a
long horizon into a handful of fixed-point solves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.typealiases import FloatArray
from repro.errors import GameDefinitionError
from repro.game.definition import MACGame
from repro.game.strategies import Strategy
from repro.game.utility import StageOutcome

__all__ = ["GameTrace", "RepeatedGameEngine", "StageRecord"]


@dataclass(frozen=True)
class StageRecord:
    """One stage of a played-out game.

    Attributes
    ----------
    stage:
        Stage index ``k`` (0-based).
    windows:
        The window profile ``W^k`` actually played.
    observed_windows:
        Per-player views of the profile, shape ``(n, n)``: row ``i`` is
        what player ``i`` measured (its own entry is always exact; the
        others carry the engine's observation noise, if any).
    utilities:
        Per-player utility rates ``u_i(W^k)``.
    stage_payoffs:
        Per-player stage payoffs ``U_i^s = u_i T``.
    """

    stage: int
    windows: FloatArray
    observed_windows: FloatArray
    utilities: FloatArray
    stage_payoffs: FloatArray


@dataclass
class GameTrace:
    """Full record of a repeated-game run.

    Attributes
    ----------
    records:
        One :class:`StageRecord` per played stage.
    converged_at:
        First stage from which the window profile never changed again, or
        ``None`` if it kept changing until the horizon.
    """

    records: List[StageRecord] = field(default_factory=list)
    converged_at: Optional[int] = None

    @property
    def n_stages(self) -> int:
        """Number of stages played."""
        return len(self.records)

    @property
    def final_windows(self) -> FloatArray:
        """The window profile of the last stage."""
        if not self.records:
            raise GameDefinitionError("trace is empty")
        return self.records[-1].windows

    def window_history(self) -> FloatArray:
        """Stacked window profiles, shape ``(n_stages, n_players)``."""
        return np.stack([record.windows for record in self.records])

    def payoff_history(self) -> FloatArray:
        """Stacked stage payoffs, shape ``(n_stages, n_players)``."""
        return np.stack([record.stage_payoffs for record in self.records])

    def discounted_payoffs(self, discount_factor: float) -> FloatArray:
        """Per-player discounted payoff ``sum_k delta^k U_i^s(W^k)``."""
        payoffs = self.payoff_history()
        powers = discount_factor ** np.arange(payoffs.shape[0])
        return powers @ payoffs

    def has_common_window(self) -> bool:
        """Whether the final stage has every player on one window."""
        final = self.final_windows
        return bool(np.all(final == final[0]))


class RepeatedGameEngine:
    """Plays the repeated MAC game under given per-player strategies.

    Parameters
    ----------
    game:
        The stage game.
    strategies:
        One :class:`~repro.game.strategies.Strategy` per player.
    initial_windows:
        The stage-0 profile ("cooperate first": for TFT players this is
        their cooperative opening window).
    observation_noise:
        Maximum absolute integer perturbation applied independently to
        every observed window (0 disables noise).  Models imperfect CW
        measurement.
    rng:
        Random generator for the observation noise.

    Examples
    --------
    >>> from repro.game import MACGame, TitForTat
    >>> game = MACGame(n_players=3)
    >>> engine = RepeatedGameEngine(
    ...     game, [TitForTat()] * 3, initial_windows=[64, 128, 256])
    >>> trace = engine.run(6)
    >>> trace.final_windows.tolist()
    [64.0, 64.0, 64.0]
    """

    def __init__(
        self,
        game: MACGame,
        strategies: Sequence[Strategy],
        initial_windows: Sequence[int],
        *,
        observation_noise: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if len(strategies) != game.n_players:
            raise GameDefinitionError(
                f"need {game.n_players} strategies, got {len(strategies)}"
            )
        self.game = game
        self.strategies = list(strategies)
        self.initial_windows = game.validate_profile(initial_windows)
        if observation_noise < 0:
            raise GameDefinitionError(
                f"observation_noise must be >= 0, got {observation_noise!r}"
            )
        self.observation_noise = int(observation_noise)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._stage_cache: Dict[Tuple[int, ...], StageOutcome] = {}

    # ------------------------------------------------------------------
    def _solve_stage(self, windows: FloatArray) -> StageOutcome:
        key = tuple(int(round(w)) for w in windows)
        outcome = self._stage_cache.get(key)
        if outcome is None:
            outcome = self.game.stage(windows)
            self._stage_cache[key] = outcome
        return outcome

    def _observe(self, windows: FloatArray) -> FloatArray:
        """Per-player noisy observations of one stage's profile.

        Returns an ``(n, n)`` array whose row ``i`` is player ``i``'s view
        of the profile.  A player always knows its *own* window exactly;
        noise only perturbs its measurement of the others.
        """
        n = self.game.n_players
        if self.observation_noise == 0:
            return np.tile(windows, (n, 1))
        noise = self.rng.integers(
            -self.observation_noise,
            self.observation_noise + 1,
            size=(n, n),
        )
        np.fill_diagonal(noise, 0)
        lo, hi = self.game.params.cw_min, self.game.params.cw_max
        return np.clip(windows[None, :] + noise, lo, hi)

    def run(self, n_stages: int, *, stop_when_converged: bool = False) -> GameTrace:
        """Play ``n_stages`` stages and return the trace.

        Parameters
        ----------
        n_stages:
            Horizon; must be >= 1.
        stop_when_converged:
            Stop early once the profile has repeated for two consecutive
            stages (TFT keeps a converged profile forever, so nothing is
            lost; deviators' dynamics still play out because the profile
            changes while they act).
        """
        if n_stages < 1:
            raise GameDefinitionError(f"n_stages must be >= 1, got {n_stages!r}")
        trace = GameTrace()
        observed_history: List[FloatArray] = []
        windows = self.initial_windows.copy()
        last_change_stage = 0

        for stage in range(n_stages):
            if stage > 0:
                windows = np.array(
                    [
                        float(
                            self.strategies[player].next_window(
                                player,
                                [view[player] for view in observed_history],
                                self.game,
                            )
                        )
                        for player in range(self.game.n_players)
                    ]
                )
            outcome = self._solve_stage(windows)
            observed = self._observe(windows)
            observed_history.append(observed)
            trace.records.append(
                StageRecord(
                    stage=stage,
                    windows=windows.copy(),
                    observed_windows=observed,
                    utilities=outcome.utilities.copy(),
                    stage_payoffs=outcome.utilities
                    * self.game.params.stage_duration_us,
                )
            )
            if stage > 0 and np.array_equal(
                trace.records[-1].windows, trace.records[-2].windows
            ):
                if trace.converged_at is None:
                    trace.converged_at = last_change_stage
                if stop_when_converged and stage >= last_change_stage + 2:
                    break
            else:
                last_change_stage = stage
                trace.converged_at = None
        return trace
