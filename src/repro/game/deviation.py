"""Short-sighted deviation analysis (Section V.D).

A deviator ``s`` with discount ``delta_s`` plays ``W_s < W_c*`` while the
other ``n - 1`` players need ``m_react`` stages to notice and follow (per
TFT/GTFT).  Its discounted payoff is

``U_s = (1 - delta_s^m) / (1 - delta_s) * U_s^s(W_c*, .., W_s, .., W_c*)
      + delta_s^m / (1 - delta_s) * U_s^s(W_s, ..., W_s)``

versus ``U_s' = U_s^s(W_c*, ..., W_c*) / (1 - delta_s)`` for conforming.

The paper's conclusions, all checkable through this module:

* an extremely short-sighted player (``delta_s -> 0``) strictly gains by
  deviating (Lemma 4 gives it the large first-stage payoff);
* a long-sighted player's optimal ``W_s`` is ``W_c*`` itself - deviation
  does not pay;
* after the network converges to ``W_s`` everyone (deviator included)
  earns less per stage than at ``W_c*``, so short-sighted players degrade
  the network and, for very small ``W_s``, collapse it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.typealiases import FloatArray
from repro.errors import ParameterError
from repro.game.definition import MACGame
from repro.game.equilibrium import efficient_window

__all__ = [
    "DeviationAnalysis",
    "DeviationTable",
    "analyze_deviation",
    "deviation_candidates",
    "deviation_table",
    "optimal_deviation_window",
]


@dataclass(frozen=True)
class DeviationAnalysis:
    """Payoffs of one short-sighted deviation scenario.

    Attributes
    ----------
    deviation_window:
        The deviator's window ``W_s``.
    reference_window:
        The window everyone else starts on (normally ``W_c*``).
    discount:
        The deviator's discount factor ``delta_s``.
    reaction_stages:
        ``m_react``: stages before the other players follow to ``W_s``.
    payoff_deviate:
        Discounted payoff of deviating, ``U_s``.
    payoff_conform:
        Discounted payoff of conforming, ``U_s'``.
    stage_payoff_before:
        Deviator's stage payoff while others are still on the reference
        window.
    stage_payoff_after:
        Common stage payoff once everyone has converged to ``W_s``.
    stage_payoff_reference:
        Common stage payoff at the reference symmetric profile.
    """

    deviation_window: int
    reference_window: int
    discount: float
    reaction_stages: int
    payoff_deviate: float
    payoff_conform: float
    stage_payoff_before: float
    stage_payoff_after: float
    stage_payoff_reference: float

    @property
    def gain(self) -> float:
        """Discounted gain of deviating, ``U_s - U_s'``."""
        return self.payoff_deviate - self.payoff_conform

    @property
    def profitable(self) -> bool:
        """Whether the deviation strictly pays for this deviator."""
        return self.gain > 0

    @property
    def network_degradation(self) -> float:
        """Per-stage social loss after convergence, as a fraction.

        ``1 - U^s(W_s..W_s) / U^s(W*..W*)``: 0 means no degradation and
        values approaching (or exceeding) 1 mean collapse.
        """
        if self.stage_payoff_reference <= 0:
            raise ParameterError(
                "reference stage payoff must be positive to measure "
                "degradation"
            )
        return 1.0 - self.stage_payoff_after / self.stage_payoff_reference


def analyze_deviation(
    game: MACGame,
    deviation_window: int,
    *,
    discount: float,
    reaction_stages: int = 1,
    reference_window: Optional[int] = None,
) -> DeviationAnalysis:
    """Evaluate the Section V.D scenario for one deviator.

    Parameters
    ----------
    game:
        The stage game.
    deviation_window:
        ``W_s``, the deviator's window.
    discount:
        ``delta_s`` in ``(0, 1)``; small = short-sighted.
    reaction_stages:
        ``m_react >= 1``, stages before others react.
    reference_window:
        The pre-deviation common window.  Defaults to the efficient NE
        ``W_c*`` of the game.

    Returns
    -------
    DeviationAnalysis
    """
    if not 0.0 < discount < 1.0:
        raise ParameterError(f"discount must lie in (0, 1), got {discount!r}")
    if reaction_stages < 1:
        raise ParameterError(
            f"reaction_stages must be >= 1, got {reaction_stages!r}"
        )
    if reference_window is None:
        reference_window = efficient_window(
            game.n_players, game.params, game.times
        )

    n = game.n_players
    # The three stage profiles (mixed, all-deviant, all-reference) differ
    # only in windows: one batched solve covers them all.
    mixed = [float(deviation_window)] + [float(reference_window)] * (n - 1)
    outcomes = game.stage_batch(
        [mixed, [float(deviation_window)] * n, [float(reference_window)] * n]
    )
    duration = game.params.stage_duration_us
    stage_before = float(outcomes[0].utilities[0]) * duration
    stage_after = float(outcomes[1].utilities[0]) * duration
    stage_reference = float(outcomes[2].utilities[0]) * duration

    return _assemble_analysis(
        deviation_window=int(deviation_window),
        reference_window=int(reference_window),
        discount=discount,
        reaction_stages=reaction_stages,
        stage_before=stage_before,
        stage_after=stage_after,
        stage_reference=stage_reference,
    )


def _assemble_analysis(
    *,
    deviation_window: int,
    reference_window: int,
    discount: float,
    reaction_stages: int,
    stage_before: float,
    stage_after: float,
    stage_reference: float,
) -> DeviationAnalysis:
    """Fold stage payoffs into the discounted Section V.D comparison."""
    geometric_head = (1.0 - discount**reaction_stages) / (1.0 - discount)
    geometric_tail = discount**reaction_stages / (1.0 - discount)
    payoff_deviate = geometric_head * stage_before + geometric_tail * stage_after
    payoff_conform = stage_reference / (1.0 - discount)
    return DeviationAnalysis(
        deviation_window=deviation_window,
        reference_window=reference_window,
        discount=discount,
        reaction_stages=reaction_stages,
        payoff_deviate=payoff_deviate,
        payoff_conform=payoff_conform,
        stage_payoff_before=stage_before,
        stage_payoff_after=stage_after,
        stage_payoff_reference=stage_reference,
    )


def deviation_candidates(
    game: MACGame, reference_window: int
) -> List[int]:
    """Default candidate grid for the deviator's window scan.

    A geometric grid over ``[cw_min, reference_window]`` (ratio 1.25)
    plus the reference window itself, sorted ascending.
    """
    lo = game.params.cw_min
    grid = {int(reference_window)}
    value = max(lo, 2)
    while value < reference_window:
        grid.add(int(value))
        value = max(value + 1, int(value * 1.25))
    return sorted(grid)


@dataclass(frozen=True)
class DeviationTable:
    """Stage payoffs of a whole candidate scan, solved as one batch.

    The stage payoffs of the Section V.D comparison do not depend on the
    deviator's discount, so one batched fixed-point solve over the
    ``2 C + 1`` profiles (mixed and all-deviant per candidate, plus the
    all-reference profile) supports every discount: Table-of-Figure-5
    style sweeps re-rank the same table instead of re-solving the model
    per ``delta_s``.

    Attributes
    ----------
    candidates:
        Candidate windows ``W_s``, ascending.
    reference_window:
        The pre-deviation common window (normally ``W_c*``).
    reaction_stages:
        ``m_react`` baked into the discounted comparison.
    stage_before:
        Deviator's stage payoff per candidate while others still play the
        reference window.
    stage_after:
        Common stage payoff per candidate once everyone converged to it.
    stage_reference:
        Common stage payoff at the reference symmetric profile.
    """

    candidates: Tuple[int, ...]
    reference_window: int
    reaction_stages: int
    stage_before: FloatArray
    stage_after: FloatArray
    stage_reference: float

    def analysis(self, index: int, discount: float) -> DeviationAnalysis:
        """The :class:`DeviationAnalysis` of candidate ``index``."""
        if not 0.0 < discount < 1.0:
            raise ParameterError(
                f"discount must lie in (0, 1), got {discount!r}"
            )
        return _assemble_analysis(
            deviation_window=self.candidates[index],
            reference_window=self.reference_window,
            discount=discount,
            reaction_stages=self.reaction_stages,
            stage_before=float(self.stage_before[index]),
            stage_after=float(self.stage_after[index]),
            stage_reference=self.stage_reference,
        )

    def best(self, discount: float) -> DeviationAnalysis:
        """The payoff-maximising candidate for one discount.

        Ties resolve to the smallest candidate window, matching the
        scalar scan's first-maximum semantics.
        """
        analyses = [
            self.analysis(i, discount) for i in range(len(self.candidates))
        ]
        return max(analyses, key=lambda a: a.payoff_deviate)


def deviation_table(
    game: MACGame,
    *,
    reaction_stages: int = 1,
    reference_window: Optional[int] = None,
    candidates: Optional[Sequence[int]] = None,
) -> DeviationTable:
    """Solve the candidate scan's stage payoffs in one batched call."""
    if reaction_stages < 1:
        raise ParameterError(
            f"reaction_stages must be >= 1, got {reaction_stages!r}"
        )
    if reference_window is None:
        reference_window = efficient_window(
            game.n_players, game.params, game.times
        )
    if candidates is None:
        candidates = deviation_candidates(game, reference_window)
    if not candidates:
        raise ParameterError("candidates must be non-empty")
    windows = [int(c) for c in candidates]

    n = game.n_players
    profiles: List[List[float]] = []
    for window in windows:
        profiles.append([float(window)] + [float(reference_window)] * (n - 1))
        profiles.append([float(window)] * n)
    profiles.append([float(reference_window)] * n)
    outcomes = game.stage_batch(profiles)
    duration = game.params.stage_duration_us
    stage_before = np.array(
        [float(outcomes[2 * i].utilities[0]) for i in range(len(windows))]
    ) * duration
    stage_after = np.array(
        [float(outcomes[2 * i + 1].utilities[0]) for i in range(len(windows))]
    ) * duration
    stage_reference = float(outcomes[-1].utilities[0]) * duration
    return DeviationTable(
        candidates=tuple(windows),
        reference_window=int(reference_window),
        reaction_stages=int(reaction_stages),
        stage_before=stage_before,
        stage_after=stage_after,
        stage_reference=stage_reference,
    )


def optimal_deviation_window(
    game: MACGame,
    *,
    discount: float,
    reaction_stages: int = 1,
    reference_window: Optional[int] = None,
    candidates: Optional[Sequence[int]] = None,
) -> DeviationAnalysis:
    """The deviator's best ``W_s`` given its far-sightedness.

    Scans candidate windows (a geometric grid over
    ``[cw_min, reference_window]`` by default) and returns the analysis of
    the payoff-maximising one.  For ``discount -> 1`` the winner converges
    to the reference window itself (deviation does not pay); for
    ``discount -> 0`` it is an aggressive small window.  The whole scan is
    one batched fixed-point solve; sweeps over many discounts should build
    a :func:`deviation_table` once and call :meth:`DeviationTable.best`.
    """
    table = deviation_table(
        game,
        reaction_stages=reaction_stages,
        reference_window=reference_window,
        candidates=candidates,
    )
    return table.best(discount)
