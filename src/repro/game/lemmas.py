"""Numeric verifiers for the paper's lemmas.

Lemma 1 (heterogeneous profiles): if ``W_i > W_j`` then ``p_i > p_j``,
``tau_i < tau_j`` and ``U_i^s < U_j^s`` - a larger window means a more
polite node, which transmits less, collides more when it does (everyone
else is more aggressive relative to it) and earns less per stage.

Lemma 2 (concavity): with ``g >> e`` the utility ``U_i(tau_i)``, the
other players' transmission probabilities held fixed, is concave in
``tau_i`` - the ingredient Theorem 1 feeds to Rosen's existence theorem
for concave n-person games.

Lemma 4 (unilateral deviation from a common ``W_k``): a deviator to
``W_i > W_k`` earns less than the conformists, who in turn earn more than
at the symmetric profile - and symmetrically for ``W_i < W_k``.

These are theorems of the model, not new computations; the functions here
evaluate both sides so tests (and users) can confirm the claims hold at
any concrete operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.typealiases import FloatArray
from repro.errors import ParameterError
from repro.bianchi.batched import collision_probabilities
from repro.game.definition import MACGame

__all__ = [
    "Lemma1Check",
    "Lemma2Check",
    "Lemma4Check",
    "check_lemma1",
    "check_lemma2",
    "check_lemma4",
]


@dataclass(frozen=True)
class Lemma1Check:
    """Evaluated quantities for one Lemma 1 instance.

    Attributes
    ----------
    window_i, window_j:
        The two windows compared, with ``window_i > window_j``.
    tau_i, tau_j, p_i, p_j, utility_i, utility_j:
        Fixed-point quantities of the two nodes.
    holds:
        Whether all three predicted strict orderings hold.
    """

    window_i: float
    window_j: float
    tau_i: float
    tau_j: float
    p_i: float
    p_j: float
    utility_i: float
    utility_j: float

    @property
    def holds(self) -> bool:
        """All of ``p_i > p_j``, ``tau_i < tau_j``, ``U_i < U_j``."""
        return (
            self.p_i > self.p_j
            and self.tau_i < self.tau_j
            and self.utility_i < self.utility_j
        )


def check_lemma1(
    game: MACGame, windows: Sequence[float], i: int, j: int
) -> Lemma1Check:
    """Evaluate Lemma 1 for players ``i`` and ``j`` in a profile.

    Parameters
    ----------
    game:
        The game supplying constants.
    windows:
        Full window profile (length ``game.n_players``).
    i, j:
        Player indices with ``windows[i] > windows[j]``.

    Raises
    ------
    ParameterError
        If the windows are not strictly ordered as required.
    """
    profile = game.validate_profile(windows)
    if not profile[i] > profile[j]:
        raise ParameterError(
            f"Lemma 1 needs W_i > W_j; got W_i={profile[i]!r}, "
            f"W_j={profile[j]!r}"
        )
    outcome = game.stage(profile)
    return Lemma1Check(
        window_i=float(profile[i]),
        window_j=float(profile[j]),
        tau_i=float(outcome.tau[i]),
        tau_j=float(outcome.tau[j]),
        p_i=float(outcome.collision[i]),
        p_j=float(outcome.collision[j]),
        utility_i=float(outcome.utilities[i]),
        utility_j=float(outcome.utilities[j]),
    )


@dataclass(frozen=True)
class Lemma2Check:
    """Discrete concavity evaluation of ``U_i(tau_i)`` (Lemma 2).

    Attributes
    ----------
    tau_grid:
        The ``tau_i`` grid the utility was evaluated on.
    utilities:
        ``U_i`` at each grid point (others' ``tau`` fixed).
    max_second_difference:
        The largest (signed) second difference; concavity means it is
        non-positive up to numerical tolerance.
    """

    tau_grid: FloatArray
    utilities: FloatArray
    max_second_difference: float

    @property
    def holds(self) -> bool:
        """Whether the sampled utility is concave (to 1e-12 tolerance)."""
        scale = float(np.max(np.abs(self.utilities))) or 1.0
        return self.max_second_difference <= 1e-12 * scale


def check_lemma2(
    game: MACGame,
    others_tau: Sequence[float],
    *,
    n_points: int = 200,
    ignore_cost: bool = True,
) -> Lemma2Check:
    """Evaluate Lemma 2: concavity of ``U_i(tau_i)`` with peers fixed.

    Parameters
    ----------
    game:
        Supplies the constants (``g``, ``e``) and slot times.
    others_tau:
        The fixed transmission probabilities of the other
        ``n - 1`` players (each in ``[0, 1)``).
    n_points:
        Grid resolution over ``tau_i in (0, 1)``.
    ignore_cost:
        Apply the lemma's ``g >> e`` condition (drop ``e``).

    Returns
    -------
    Lemma2Check
    """
    others = np.asarray(list(others_tau), dtype=float)
    if others.shape != (game.n_players - 1,):
        raise ParameterError(
            f"others_tau needs {game.n_players - 1} entries, got "
            f"{others.shape!r}"
        )
    if np.any(others < 0) or np.any(others >= 1):
        raise ParameterError("others_tau values must lie in [0, 1)")
    if n_points < 5:
        raise ParameterError(f"n_points must be >= 5, got {n_points!r}")

    times = game.times
    cost = 0.0 if ignore_cost else game.params.cost
    gain = game.params.gain
    one_minus_others = 1.0 - others
    prod_others = float(np.prod(one_minus_others))
    p_i = 1.0 - prod_others  # collision probability of player i

    # Success mass of the *other* players per slot, split by whether
    # player i stays silent (their successes need i silent too).  The
    # leave-one-out products are one batched collision evaluation.
    others_single = float(np.sum(others * (1.0 - collision_probabilities(others))))

    tau_grid = np.linspace(1e-6, 1.0 - 1e-6, n_points)
    p_idle = (1.0 - tau_grid) * prod_others
    p_success = tau_grid * prod_others + (1.0 - tau_grid) * others_single
    p_tr = 1.0 - p_idle
    tslot = (
        p_idle * times.idle_us
        + p_success * times.success_us
        + (p_tr - p_success) * times.collision_us
    )
    utilities = tau_grid * ((1.0 - p_i) * gain - cost) / tslot

    second = np.diff(utilities, n=2)
    return Lemma2Check(
        tau_grid=tau_grid,
        utilities=utilities,
        max_second_difference=float(second.max()),
    )


@dataclass(frozen=True)
class Lemma4Check:
    """Evaluated quantities for one Lemma 4 instance.

    A single player deviates from the common window ``window_common`` to
    ``window_deviant``; the class records the three stage utilities the
    lemma orders.

    Attributes
    ----------
    utility_deviant:
        Stage utility of the deviator under the deviated profile.
    utility_conformist:
        Stage utility of a non-deviating player under the deviated
        profile.
    utility_symmetric:
        Common stage utility at the original symmetric profile.
    """

    window_common: float
    window_deviant: float
    utility_deviant: float
    utility_conformist: float
    utility_symmetric: float

    @property
    def holds(self) -> bool:
        """The ordering predicted by Lemma 4 for this deviation direction."""
        if self.window_deviant > self.window_common:
            return (
                self.utility_deviant
                < self.utility_symmetric
                < self.utility_conformist
            )
        return (
            self.utility_conformist
            < self.utility_symmetric
            < self.utility_deviant
        )


def check_lemma4(
    game: MACGame, window_common: float, window_deviant: float
) -> Lemma4Check:
    """Evaluate Lemma 4 for one unilateral deviation.

    Player 0 deviates to ``window_deviant`` while the other
    ``n - 1`` players stay on ``window_common``.
    """
    if np.isclose(window_common, window_deviant):
        raise ParameterError(
            "Lemma 4 needs a strict deviation; both windows are "
            f"{window_common!r}"
        )
    profile = [window_deviant] + [window_common] * (game.n_players - 1)
    # Both stage profiles of the lemma solve as one batch.
    deviated, symmetric = game.stage_batch(
        [profile, [window_common] * game.n_players]
    )
    return Lemma4Check(
        window_common=float(window_common),
        window_deviant=float(window_deviant),
        utility_deviant=float(deviated.utilities[0]),
        utility_conformist=float(deviated.utilities[1]),
        utility_symmetric=float(symmetric.utilities[0]),
    )
