"""Non-cooperative MAC game of the paper (Sections IV-V).

The game ``G = (P, S, U, delta)`` has the network nodes as players, the
contention-window set as strategy space, and the discounted sum of stage
utilities as payoff.  This subpackage provides:

* stage and discounted utilities (:mod:`repro.game.utility`),
* the game definition object (:mod:`repro.game.definition`),
* the symmetric-equilibrium analysis of Section V: the stationarity
  function ``Q``, the optimal ``tau_c*`` and ``W_c*``, the break-even
  ``W_c0`` and the NE interval of Theorem 2
  (:mod:`repro.game.equilibrium`),
* NE refinement by fairness / social welfare / Pareto optimality
  (:mod:`repro.game.refinement`),
* numeric verifiers of the payoff-ordering Lemmas 1 and 4
  (:mod:`repro.game.lemmas`),
* stage-game strategies - TFT, GTFT, constants, deviators
  (:mod:`repro.game.strategies`),
* a repeated-game engine (:mod:`repro.game.repeated`),
* the distributed search protocol of Section V.C (:mod:`repro.game.search`),
* the short-sighted deviation analysis of Section V.D
  (:mod:`repro.game.deviation`).
"""

from repro.game.definition import MACGame
from repro.game.utility import (
    StageOutcome,
    discounted_utility,
    stage_outcome,
    stage_utilities,
    symmetric_stage_utility,
)
from repro.game.equilibrium import (
    EquilibriumAnalysis,
    analyze_equilibria,
    breakeven_window,
    efficient_window,
    is_symmetric_equilibrium,
    optimal_tau,
    q_function,
    window_for_tau,
)
from repro.game.dynamics import (
    ReplicatorTrajectory,
    converges_to_ne,
    replicator_step,
    run_replicator,
)
from repro.game.refinement import RefinementReport, refine_equilibria
from repro.game.strategies import (
    BestResponseStrategy,
    ConstantStrategy,
    GenerousTitForTat,
    MaliciousStrategy,
    ShortSightedStrategy,
    Strategy,
    TitForTat,
)
from repro.game.repeated import RepeatedGameEngine, StageRecord, GameTrace
from repro.game.search import SearchOutcome, run_search_protocol
from repro.game.deviation import DeviationAnalysis, analyze_deviation
from repro.game.delay_aware import (
    DelayAwareAnalysis,
    delay_aware_efficient_window,
    delay_aware_utility,
    delay_tradeoff_curve,
)
from repro.game.rate_control import (
    RateControlEquilibrium,
    RateControlGame,
    RateOption,
    default_rate_options,
)
from repro.game.verification import (
    Theorem2Report,
    is_stage_equilibrium,
    stage_deviation_gain,
    tft_deviation_gain,
    verify_theorem2,
)

__all__ = [
    "BestResponseStrategy",
    "ConstantStrategy",
    "DelayAwareAnalysis",
    "DeviationAnalysis",
    "EquilibriumAnalysis",
    "GameTrace",
    "GenerousTitForTat",
    "MACGame",
    "MaliciousStrategy",
    "RateControlEquilibrium",
    "RateControlGame",
    "RateOption",
    "RefinementReport",
    "RepeatedGameEngine",
    "ReplicatorTrajectory",
    "SearchOutcome",
    "ShortSightedStrategy",
    "StageOutcome",
    "StageRecord",
    "Strategy",
    "Theorem2Report",
    "TitForTat",
    "analyze_deviation",
    "analyze_equilibria",
    "breakeven_window",
    "converges_to_ne",
    "default_rate_options",
    "delay_aware_efficient_window",
    "delay_aware_utility",
    "delay_tradeoff_curve",
    "discounted_utility",
    "efficient_window",
    "is_stage_equilibrium",
    "is_symmetric_equilibrium",
    "optimal_tau",
    "q_function",
    "refine_equilibria",
    "replicator_step",
    "run_replicator",
    "run_search_protocol",
    "stage_deviation_gain",
    "stage_outcome",
    "stage_utilities",
    "symmetric_stage_utility",
    "tft_deviation_gain",
    "verify_theorem2",
    "window_for_tau",
]
