"""Delay-aware utility and equilibrium (the Section VIII extension).

The paper's Discussion concedes that its generic utility ignores delay,
so the efficient NE window "may seem too long in some cases", and that
"to derive a more desirable NE, more factors need to be considered
depending on the target application".  Making that quantitative exposes
two facts:

1. **Mean access delay is already co-optimised.**  In saturation the
   expected per-packet access delay is unimodal in the common window
   with its minimum on the same plateau as ``W_c*`` (maximal throughput
   = minimal queue-head service time), so a mean-delay penalty barely
   moves the NE.  The test suite pins this down.
2. **Jitter is nearly co-optimised too.**  The access-delay standard
   deviation (:func:`repro.bianchi.delay.access_delay_jitter`) has its
   minimum slightly *above* ``W_c*`` - collisions inflate the spread
   below the plateau, uniform countdowns inflate it far above - so a
   jitter price

   ``u^lambda(W) = u(W) - lambda * |u(W_c*)| * (J(W)/J(W_c*) - 1)``

   moves the efficient window modestly toward the jitter minimum and no
   further.  The NE of the saturated game is therefore robust to delay
   sensitivity: the "too long" worry of Section VIII only bites for
   non-saturated, bursty traffic, which is outside the model's scope
   (and the paper's).

All of Section V's structure survives: the delay-aware symmetric
utility stays unimodal between the two anchors, so the TFT/NE analysis
applies verbatim with the new ``W_c*(lambda)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import ParameterError
from repro.bianchi.delay import access_delay_jitter, expected_access_delay
from repro.game.definition import MACGame
from repro.game.equilibrium import efficient_window

__all__ = [
    "DelayAwareAnalysis",
    "delay_aware_efficient_window",
    "delay_aware_utility",
    "delay_tradeoff_curve",
]


def delay_aware_utility(
    game: MACGame,
    window: int,
    *,
    delay_weight: float,
    reference_window: Optional[int] = None,
) -> float:
    """The jitter-penalised symmetric utility ``u^lambda`` at a window.

    Parameters
    ----------
    game:
        The MAC game (supplies ``n``, constants and access mode).
    window:
        Common contention window.
    delay_weight:
        ``lambda >= 0``: fraction of the NE utility one reference jitter
        is worth.  0 recovers the paper's utility.
    reference_window:
        Where the jitter and utility scales are anchored; defaults to
        the delay-free efficient NE ``W_c*``.
    """
    if delay_weight < 0:
        raise ParameterError(
            f"delay_weight must be >= 0, got {delay_weight!r}"
        )
    base = game.symmetric_utility(window)
    if delay_weight == 0:
        return base
    if reference_window is None:
        reference_window = efficient_window(
            game.n_players, game.params, game.times
        )
    reference_jitter = access_delay_jitter(
        reference_window, game.n_players, game.params, game.times
    )
    if reference_jitter <= 0:
        raise ParameterError("reference jitter must be positive")
    jitter = access_delay_jitter(
        window, game.n_players, game.params, game.times
    )
    penalty_unit = abs(game.symmetric_utility(reference_window))
    return base - delay_weight * penalty_unit * (
        jitter / reference_jitter - 1.0
    )


@dataclass(frozen=True)
class DelayAwareAnalysis:
    """Equilibrium of the delay-aware game for one ``lambda``.

    Attributes
    ----------
    delay_weight:
        The ``lambda`` analysed.
    window_star:
        The delay-aware efficient window ``W_c*(lambda)``.
    mean_delay_us:
        Expected access delay at that window.
    jitter_us:
        Access-delay standard deviation at that window.
    throughput_utility:
        The *paper's* (jitter-free) utility at that window - what the
        responsiveness trade costs in throughput terms.
    """

    delay_weight: float
    window_star: int
    mean_delay_us: float
    jitter_us: float
    throughput_utility: float


def delay_aware_efficient_window(
    game: MACGame,
    *,
    delay_weight: float,
    search_cap: Optional[int] = None,
) -> DelayAwareAnalysis:
    """The efficient window of the delay-aware game.

    Scans integer windows up to ~3x the delay-free optimum (the jitter
    minimum sits between ``W_c*`` and roughly twice it, so the
    delay-aware optimum lives in that band) and returns the maximiser
    with its delay decomposition.
    """
    star = efficient_window(game.n_players, game.params, game.times)
    if search_cap is None:
        search_cap = 3 * star + 4
    lo = max(game.params.cw_min, 2)
    best_window, best_value = lo, float("-inf")
    for window in range(lo, search_cap + 1):
        value = delay_aware_utility(
            game,
            window,
            delay_weight=delay_weight,
            reference_window=star,
        )
        if value > best_value:
            best_window, best_value = window, value
    delay = expected_access_delay(
        best_window, game.n_players, game.params, game.times
    )
    return DelayAwareAnalysis(
        delay_weight=delay_weight,
        window_star=best_window,
        mean_delay_us=delay.delay_us,
        jitter_us=access_delay_jitter(
            best_window, game.n_players, game.params, game.times
        ),
        throughput_utility=game.symmetric_utility(best_window),
    )


def delay_tradeoff_curve(
    game: MACGame,
    delay_weights: Sequence[float],
) -> Dict[float, DelayAwareAnalysis]:
    """Sweep ``lambda`` and return the NE trade-off curve.

    As ``lambda`` grows, ``W_c*(lambda)`` moves monotonically from the
    throughput optimum toward the jitter minimum, trading a sliver of
    throughput for responsiveness - the Section VIII remark made
    quantitative (and shown to be mild in saturation).
    """
    if not delay_weights:
        raise ParameterError("delay_weights must be non-empty")
    return {
        weight: delay_aware_efficient_window(game, delay_weight=weight)
        for weight in delay_weights
    }
