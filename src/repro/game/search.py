"""Distributed search for the efficient NE (Section V.C).

When the nodes do not know ``n`` they cannot compute ``W_c*`` directly; the
paper's protocol lets one initiator find it by joint hill climbing:

1. **Start-Search** - initiator ``l`` broadcasts a starting window ``W_0``;
   everyone adopts it.
2. **Right-Search** - ``l`` repeatedly raises the common window by one step
   (broadcasting ``Ready`` each time), measures its own payoff over a
   window ``t_m``, and stops at the first decrease.  ``W_m`` is the last
   window before the decrease.
3. **Left-Search** - only if right-search stopped immediately
   (``W_m = W_0``): ``l`` walks downward the same way.
4. ``l`` broadcasts ``W_m`` as the efficient NE.

Because all players move together, the measured payoff is the symmetric
utility ``U_i(W, ..., W)`` - unimodal in ``W`` (Lemma 3) - so the climb
finds its maximum.  The implementation exposes the payoff measurement as a
callable: the default is the analytic symmetric utility, and the
simulation layer plugs in a simulator-backed measurement (with sampling
noise) instead.

Deviating from the paper's literal text in one detail: the paper skips
left-search unless ``W_m = W_0 + 1``; we trigger it whenever right-search
fails immediately, which is the same condition expressed on our step
bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.game.definition import MACGame

__all__ = ["SearchOutcome", "run_search_protocol"]

PayoffMeasurement = Callable[[int], float]


@dataclass(frozen=True)
class SearchMessage:
    """A broadcast message of the search protocol (for trace inspection).

    ``kind`` is one of ``"start"``, ``"ready"``, ``"result"``; ``window``
    is the common window the message carries.
    """

    kind: str
    window: int


@dataclass
class SearchOutcome:
    """Result of one protocol run.

    Attributes
    ----------
    window:
        The window the initiator broadcasts as the efficient NE.
    measurements:
        ``(window, payoff)`` pairs in measurement order.
    messages:
        The broadcast trace (start / ready / result messages).
    """

    window: int
    measurements: List[Tuple[int, float]] = field(default_factory=list)
    messages: List[SearchMessage] = field(default_factory=list)

    @property
    def n_measurements(self) -> int:
        """Number of payoff measurements the initiator performed."""
        return len(self.measurements)


def run_search_protocol(
    game: MACGame,
    start_window: int,
    *,
    measure: Optional[PayoffMeasurement] = None,
    step: int = 1,
    max_steps: int = 100_000,
) -> SearchOutcome:
    """Run the Section V.C protocol and return the found window.

    Parameters
    ----------
    game:
        The game being played; bounds the search to its strategy space and
        supplies the default analytic payoff measurement.
    start_window:
        ``W_0``, the initiator's starting point.
    measure:
        Payoff measurement ``window -> payoff`` for the initiator when all
        players share ``window``.  Defaults to the analytic symmetric
        utility; pass a simulator-backed callable for a realistic run.
    step:
        Window increment per Ready message (the paper uses 1; larger steps
        trade accuracy for protocol rounds).
    max_steps:
        Safety bound on protocol rounds.

    Returns
    -------
    SearchOutcome

    Raises
    ------
    ProtocolError
        If the search leaves the strategy space or exhausts ``max_steps``.
    """
    lo, hi = game.params.cw_min, game.params.cw_max
    if not lo <= start_window <= hi:
        raise ProtocolError(
            f"start_window {start_window!r} outside strategy space "
            f"[{lo}, {hi}]"
        )
    if step < 1:
        raise ProtocolError(f"step must be >= 1, got {step!r}")
    if measure is None:
        measure = lambda window: game.symmetric_utility(window)  # noqa: E731

    outcome = SearchOutcome(window=start_window)

    def measured(window: int) -> float:
        payoff = measure(window)
        outcome.measurements.append((window, payoff))
        return payoff

    outcome.messages.append(SearchMessage("start", start_window))
    current = start_window
    best_payoff = measured(current)

    # ------------------------------------------------------------ right
    steps = 0
    while current + step <= hi:
        steps += 1
        if steps > max_steps:
            raise ProtocolError(f"right-search exceeded {max_steps} rounds")
        candidate = current + step
        outcome.messages.append(SearchMessage("ready", candidate))
        payoff = measured(candidate)
        if payoff > best_payoff:
            best_payoff = payoff
            current = candidate
        else:
            break

    # ------------------------------------------------------------- left
    if current == start_window:
        steps = 0
        while current - step >= lo:
            steps += 1
            if steps > max_steps:
                raise ProtocolError(f"left-search exceeded {max_steps} rounds")
            candidate = current - step
            outcome.messages.append(SearchMessage("ready", candidate))
            payoff = measured(candidate)
            if payoff > best_payoff:
                best_payoff = payoff
                current = candidate
            else:
                break

    outcome.window = current
    outcome.messages.append(SearchMessage("result", current))
    return outcome
