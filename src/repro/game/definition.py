"""The non-cooperative IEEE 802.11 MAC game ``G`` (Definition 1).

:class:`MACGame` bundles the player set, the strategy space (contention
windows), the PHY constants and the access mode, and exposes the stage /
discounted utility machinery with the game's own parameters filled in.
It is the object the strategies, the repeated-game engine, the equilibrium
analysis and the experiments all consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.typealiases import FloatArray
from repro.errors import GameDefinitionError
from repro.game.utility import (
    StageOutcome,
    stage_outcome,
    stage_outcome_batch,
    symmetric_stage_utility,
    symmetric_utility_curve,
)
from repro.phy.parameters import AccessMode, PhyParameters, default_parameters
from repro.phy.timing import SlotTimes, slot_times

__all__ = ["MACGame"]


@dataclass(frozen=True)
class MACGame:
    """The repeated MAC game ``G = (P, S, U, delta)`` of Definition 1.

    Attributes
    ----------
    n_players:
        Size of the player set ``P`` (all nodes hear each other; the
        multi-hop game of Section VI composes local instances of this
        class).
    params:
        PHY/MAC constants, including ``g``, ``e``, the stage duration
        ``T`` and the discount factor ``delta``.
    mode:
        Channel access mechanism (basic or RTS/CTS).

    Examples
    --------
    >>> game = MACGame(n_players=5)
    >>> profile = [128] * 5
    >>> outcome = game.stage(profile)
    >>> outcome.utilities.shape
    (5,)
    """

    n_players: int
    params: PhyParameters = field(default_factory=default_parameters)
    mode: AccessMode = AccessMode.BASIC

    def __post_init__(self) -> None:
        if self.n_players < 2:
            raise GameDefinitionError(
                f"the MAC game needs at least 2 players, got {self.n_players!r}"
            )

    # ------------------------------------------------------------------
    # Derived constants
    # ------------------------------------------------------------------
    @property
    def times(self) -> SlotTimes:
        """Slot durations ``(Ts, Tc, sigma)`` for this game's access mode."""
        return slot_times(self.params, self.mode)

    @property
    def discount_factor(self) -> float:
        """The discount ``delta`` of the repeated game."""
        return self.params.discount_factor

    @property
    def strategy_space(self) -> range:
        """The CW strategy set ``W = {cw_min, ..., cw_max}``."""
        return self.params.strategy_space()

    def validate_profile(self, windows: Sequence[float]) -> FloatArray:
        """Check a window profile against the game; return it as an array."""
        arr = np.asarray(list(windows), dtype=float)
        if arr.shape != (self.n_players,):
            raise GameDefinitionError(
                f"profile must have {self.n_players} entries, got {arr.shape!r}"
            )
        lo, hi = self.params.cw_min, self.params.cw_max
        if np.any(arr < lo) or np.any(arr > hi):
            raise GameDefinitionError(
                f"profile {arr!r} leaves the strategy space [{lo}, {hi}]"
            )
        return arr

    # ------------------------------------------------------------------
    # Payoffs
    # ------------------------------------------------------------------
    def stage(self, windows: Sequence[float]) -> StageOutcome:
        """Solve one stage of the game for the given window profile."""
        profile = self.validate_profile(windows)
        return stage_outcome(profile, self.params, self.times)

    def stage_payoffs(self, windows: Sequence[float]) -> FloatArray:
        """Per-player stage payoffs ``U_i^s = u_i T`` for a profile."""
        return self.stage(windows).utilities * self.params.stage_duration_us

    def stage_batch(
        self, profiles: Sequence[Sequence[float]]
    ) -> list[StageOutcome]:
        """Solve many stage profiles in one batched fixed-point call.

        Validates every profile against the strategy space, then hands
        the whole ``(B, n)`` family to the batched solver; the candidate
        scans of the deviation and best-response analyses use this
        instead of ``B`` separate :meth:`stage` calls.
        """
        stacked = np.stack([self.validate_profile(p) for p in profiles])
        return stage_outcome_batch(stacked, self.params, self.times)

    def symmetric_utility(
        self, window: float, *, ignore_cost: bool = False
    ) -> float:
        """Per-node utility rate when every player uses ``window``."""
        return symmetric_stage_utility(
            window,
            self.n_players,
            self.params,
            self.times,
            ignore_cost=ignore_cost,
        )

    def symmetric_stage_payoff(
        self, window: float, *, ignore_cost: bool = False
    ) -> float:
        """Per-node stage payoff at a symmetric profile."""
        rate = self.symmetric_utility(window, ignore_cost=ignore_cost)
        return rate * self.params.stage_duration_us

    def global_payoff(self, window: float, *, ignore_cost: bool = False) -> float:
        """Social welfare ``sum_i U_i = n * U_i`` at a symmetric profile.

        Figures 2 and 3 of the paper plot this quantity (scaled by the
        constant ``C = g T / (sigma (1 - delta))``) against ``W_c``.
        """
        return self.n_players * self.symmetric_utility(
            window, ignore_cost=ignore_cost
        )

    def global_payoff_curve(
        self,
        windows: Sequence[float],
        *,
        ignore_cost: bool = False,
    ) -> FloatArray:
        """:meth:`global_payoff` for a whole window grid in one call.

        The Figures 2/3 sweeps and the malicious-impact table evaluate
        social welfare over hundreds of symmetric windows; this solves
        the entire grid as one batched symmetric fixed point.
        """
        curve = symmetric_utility_curve(
            np.asarray(list(windows), dtype=float),
            self.n_players,
            self.params,
            self.times,
            ignore_cost=ignore_cost,
        )
        result: FloatArray = self.n_players * curve
        return result
