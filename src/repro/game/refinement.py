"""Nash-equilibrium refinement (Section V.B).

Theorem 2 leaves a family of ``W_c* - W_c0 + 1`` symmetric equilibria.
The paper prunes it with three extra optimality criteria:

* **Fairness** - satisfied by every symmetric NE (all players use the same
  window, hence earn the same payoff) by construction of TFT.
* **Social welfare maximisation** - the sum of payoffs ``n U_i`` is
  maximised only at ``(W_c*, ..., W_c*)``.
* **Pareto optimality** - for symmetric profiles, every ``W_c != W_c*``
  is Pareto-dominated by ``W_c*`` (all players strictly gain by moving).

The refinement therefore selects the unique efficient NE ``W_c*``.  This
module makes each criterion checkable on its own and produces a report
object used by the tests and the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ParameterError
from repro.game.definition import MACGame
from repro.game.equilibrium import EquilibriumAnalysis, analyze_equilibria

__all__ = ["RefinementReport", "refine_equilibria"]


@dataclass(frozen=True)
class RefinementReport:
    """Outcome of the Section V.B refinement for one game.

    Attributes
    ----------
    analysis:
        The underlying equilibrium analysis (``W_c0``, ``W_c*`` ...).
    utilities:
        Per-window symmetric utility for every NE window in the family.
    efficient_window:
        The unique NE surviving refinement - equals
        ``analysis.window_star``.
    social_welfare:
        Per-window social welfare ``n * U_i`` over the NE family.
    """

    analysis: EquilibriumAnalysis
    utilities: Dict[int, float]
    efficient_window: int
    social_welfare: Dict[int, float]

    # ------------------------------------------------------------------
    # Criteria, individually checkable
    # ------------------------------------------------------------------
    def is_fair(self, window: int) -> bool:
        """Fairness holds for every symmetric NE (common window/payoff)."""
        self._require_member(window)
        return True

    def maximizes_social_welfare(self, window: int) -> bool:
        """Whether ``window`` attains the maximum social welfare."""
        self._require_member(window)
        best = max(self.social_welfare.values())
        return np.isclose(self.social_welfare[window], best, rtol=0, atol=0) or (
            self.social_welfare[window] >= best
        )

    def is_pareto_optimal(self, window: int) -> bool:
        """Whether no other NE in the family Pareto-dominates ``window``.

        For symmetric profiles all players share one utility, so Pareto
        dominance collapses to a strict utility comparison.
        """
        self._require_member(window)
        mine = self.utilities[window]
        return all(other <= mine for other in self.utilities.values())

    def _require_member(self, window: int) -> None:
        if window not in self.utilities:
            raise ParameterError(
                f"window {window!r} is not in the NE family "
                f"[{self.analysis.window_breakeven}, {self.analysis.window_star}]"
            )


def refine_equilibria(
    game: MACGame,
    *,
    analysis: Optional[EquilibriumAnalysis] = None,
    max_family_size: int = 20_000,
) -> RefinementReport:
    """Apply the Section V.B refinement to a game's symmetric NE family.

    Parameters
    ----------
    game:
        The MAC game to refine.
    analysis:
        Optional pre-computed equilibrium analysis.
    max_family_size:
        Safety bound on the number of NE windows enumerated (the family is
        ``W_c* - W_c0 + 1`` wide, typically a few hundred).

    Returns
    -------
    RefinementReport
        With the efficient NE and per-criterion checkers.
    """
    if analysis is None:
        analysis = analyze_equilibria(game.n_players, game.params, game.times)
    family = analysis.ne_windows
    if len(family) > max_family_size:
        raise ParameterError(
            f"NE family has {len(family)} members, above the "
            f"max_family_size={max_family_size} bound"
        )
    utilities = {
        window: game.symmetric_utility(window) for window in family
    }
    social = {
        window: game.n_players * utility for window, utility in utilities.items()
    }
    efficient = max(utilities, key=lambda w: (utilities[w], -w))
    return RefinementReport(
        analysis=analysis,
        utilities=utilities,
        efficient_window=efficient,
        social_welfare=social,
    )
