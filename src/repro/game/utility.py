"""Utility functions of the MAC game (Section IV).

The per-slot utility of node ``i`` is

``u_i = tau_i ((1 - p_i) g - e) / Tslot``

- the expected gain per microsecond: with probability ``tau_i`` the node
transmits in a slot, succeeds with probability ``1 - p_i`` earning ``g``,
and pays energy ``e`` per attempt; dividing by the expected slot length
turns the per-slot expectation into a rate.

The stage utility is ``U_i^s = u_i * T`` for a stage of duration ``T`` and
the repeated-game payoff is ``U_i = sum_k delta^k U_i^s(W^k)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.typealiases import FloatArray
from repro.contracts import check_probability, checks_enabled, contract, probability
from repro.errors import ParameterError
from repro.bianchi.batched import solve_heterogeneous_batch, solve_symmetric_grid
from repro.bianchi.fixedpoint import (
    FixedPointSolution,
    solve_heterogeneous,
    solve_symmetric,
)
from repro.bianchi.throughput import slot_statistics
from repro.phy.parameters import PhyParameters
from repro.phy.timing import SlotTimes

__all__ = [
    "StageOutcome",
    "stage_outcome",
    "stage_outcome_batch",
    "stage_utilities",
    "symmetric_stage_utility",
    "symmetric_utility_curve",
    "discounted_utility",
]

ArrayLike = Union[Sequence[float], FloatArray]


@dataclass(frozen=True)
class StageOutcome:
    """Everything the game layer needs about one stage profile.

    Attributes
    ----------
    windows:
        The contention-window profile ``W^k`` the outcome refers to.
    tau:
        Per-node transmission probabilities at the fixed point.
    collision:
        Per-node conditional collision probabilities.
    utilities:
        Per-node per-microsecond utilities ``u_i``.
    expected_slot_us:
        Expected slot duration ``Tslot``.
    throughput:
        Normalized channel throughput at this profile.
    """

    windows: FloatArray
    tau: FloatArray
    collision: FloatArray
    utilities: FloatArray
    expected_slot_us: float
    throughput: float

    @property
    def global_utility(self) -> float:
        """Social welfare: the sum of per-node utilities."""
        return float(self.utilities.sum())


def _utilities_from_solution(
    tau: FloatArray,
    collision: FloatArray,
    times: SlotTimes,
    gain: float,
    cost: float,
) -> tuple[FloatArray, float]:
    stats = slot_statistics(tau, times)
    if stats.expected_slot_us <= 0:
        raise ParameterError("expected slot duration must be positive")
    utilities = tau * ((1.0 - collision) * gain - cost) / stats.expected_slot_us
    return utilities, stats.expected_slot_us


def stage_outcome(
    windows: Sequence[float],
    params: PhyParameters,
    times: SlotTimes,
) -> StageOutcome:
    """Solve one stage of the game for an arbitrary window profile.

    Parameters
    ----------
    windows:
        Per-node contention windows ``W^k = (W_1, ..., W_n)``.
    params:
        PHY/MAC constants (supplies ``g``, ``e``, ``m`` and payload time).
    times:
        Slot durations for the access mode in play.

    Returns
    -------
    StageOutcome
        Fixed-point probabilities and utilities for this profile.
    """
    solution: FixedPointSolution = solve_heterogeneous(
        windows, params.max_backoff_stage
    )
    utilities, expected_slot = _utilities_from_solution(
        solution.tau, solution.collision, times, params.gain, params.cost
    )
    stats = slot_statistics(solution.tau, times)
    throughput = (
        float(stats.per_node_success.sum())
        * params.payload_time_us
        / stats.expected_slot_us
    )
    if checks_enabled():
        # Normalized throughput is a channel fraction: a value outside
        # [0, 1] means the slot statistics and utilities are corrupt.
        check_probability(throughput, "throughput", tol=1e-6)
    return StageOutcome(
        windows=solution.windows,
        tau=solution.tau,
        collision=solution.collision,
        utilities=utilities,
        expected_slot_us=expected_slot,
        throughput=throughput,
    )


def stage_outcome_batch(
    profiles: Union[Sequence[Sequence[float]], FloatArray],
    params: PhyParameters,
    times: SlotTimes,
) -> list[StageOutcome]:
    """Solve many stage profiles in one batched fixed-point call.

    The candidate scans of the deviation/best-response analyses evaluate
    dozens of profiles that differ in a single window; stacking them into
    a ``(B, n)`` batch amortises the whole fixed-point solve across the
    family.  Per-profile slot statistics and utilities are evaluated as
    array expressions (``per-node success = tau_i (1 - p_i)``), matching
    :func:`stage_outcome` to floating-point noise.

    Parameters
    ----------
    profiles:
        Window profiles, shape ``(B, n)``.
    params, times:
        Model constants, as in :func:`stage_outcome`.

    Returns
    -------
    list of StageOutcome
        One outcome per profile, in input order.
    """
    prof = np.asarray(profiles, dtype=float)
    if prof.ndim != 2 or prof.shape[0] < 1 or prof.shape[1] < 1:
        raise ParameterError("profiles must be a non-empty (B, n) array")
    batch = solve_heterogeneous_batch(prof, params.max_backoff_stage)
    tau, collision = batch.tau, batch.collision
    p_idle = np.prod(1.0 - tau, axis=1)
    per_node_success = tau * (1.0 - collision)
    p_single = per_node_success.sum(axis=1)
    p_tr = 1.0 - p_idle
    expected_slot = (
        p_idle * times.idle_us
        + p_single * times.success_us
        + (p_tr - p_single) * times.collision_us
    )
    if np.any(expected_slot <= 0):
        raise ParameterError("expected slot duration must be positive")
    utilities = (
        tau
        * ((1.0 - collision) * params.gain - params.cost)
        / expected_slot[:, None]
    )
    throughput = p_single * params.payload_time_us / expected_slot
    if checks_enabled():
        check_probability(throughput, "throughput", tol=1e-6)
    return [
        StageOutcome(
            windows=prof[b],
            tau=tau[b],
            collision=collision[b],
            utilities=utilities[b],
            expected_slot_us=float(expected_slot[b]),
            throughput=float(throughput[b]),
        )
        for b in range(prof.shape[0])
    ]


def stage_utilities(
    windows: Sequence[float],
    params: PhyParameters,
    times: SlotTimes,
) -> FloatArray:
    """Per-node *stage* utilities ``U_i^s = u_i T`` for a window profile."""
    outcome = stage_outcome(windows, params, times)
    return outcome.utilities * params.stage_duration_us


def symmetric_stage_utility(
    window: float,
    n_nodes: int,
    params: PhyParameters,
    times: SlotTimes,
    *,
    ignore_cost: bool = False,
) -> float:
    """Per-node per-microsecond utility when everyone plays ``window``.

    This is the function the equilibrium analysis of Section V maximises.

    Parameters
    ----------
    window:
        Common contention window ``W_c`` (real values accepted for
        continuous optimisation).
    n_nodes:
        Network size ``n``.
    params, times:
        Model constants.
    ignore_cost:
        When true, drop the energy term ``e`` (the paper's ``g >> e``
        approximation of Lemma 3, used for Tables II/III).

    Returns
    -------
    float
        ``u_i`` at the symmetric profile.
    """
    solution = solve_symmetric(window, n_nodes, params.max_backoff_stage)
    return symmetric_utility_from_tau(
        solution.tau, n_nodes, params, times, ignore_cost=ignore_cost
    )


@contract(tau=probability(tol=0.0))
def symmetric_utility_from_tau(
    tau: float,
    n_nodes: int,
    params: PhyParameters,
    times: SlotTimes,
    *,
    ignore_cost: bool = False,
) -> float:
    """Symmetric per-node utility as a function of the common ``tau``.

    Expressing ``U_i`` through ``tau`` rather than ``W`` mirrors the
    paper's Lemma 2/3 derivation and is what the continuous optimiser in
    :mod:`repro.game.equilibrium` uses.  ``tau`` is contract-checked (a
    probability); the check - like every hot-path contract - is skipped
    under ``REPRO_CHECKS=0``.
    """
    if n_nodes < 1:
        raise ParameterError(f"n_nodes must be >= 1, got {n_nodes!r}")
    cost = 0.0 if ignore_cost else params.cost
    one_minus = 1.0 - tau
    p_idle = one_minus**n_nodes
    p_single = n_nodes * tau * one_minus ** (n_nodes - 1)
    p_tr = 1.0 - p_idle
    expected_slot = (
        p_idle * times.idle_us
        + p_single * times.success_us
        + (p_tr - p_single) * times.collision_us
    )
    if expected_slot <= 0:
        return 0.0
    collision = 1.0 - one_minus ** (n_nodes - 1)
    return tau * ((1.0 - collision) * params.gain - cost) / expected_slot


def symmetric_utility_curve(
    windows: Union[Sequence[float], FloatArray],
    n_nodes: int,
    params: PhyParameters,
    times: SlotTimes,
    *,
    ignore_cost: bool = False,
) -> FloatArray:
    """:func:`symmetric_stage_utility` for a whole window grid at once.

    Solves the symmetric fixed point of every grid window in one
    :func:`repro.bianchi.batched.solve_symmetric_grid` call and evaluates
    the utility formula as array expressions mirroring
    :func:`symmetric_utility_from_tau` term by term.  This is the curve
    the equilibrium searches (Figures 2/3, ``efficient_window``,
    ``breakeven_window``) maximise; batching the grid replaces thousands
    of memoized scalar solves with one array iteration.

    Parameters
    ----------
    windows:
        Window grid, shape ``(G,)``.
    n_nodes, params, times, ignore_cost:
        As in :func:`symmetric_stage_utility`.

    Returns
    -------
    numpy.ndarray
        Per-node utilities ``u_i`` at each symmetric profile, shape
        ``(G,)``; entries with a non-positive expected slot are 0.
    """
    if n_nodes < 1:
        raise ParameterError(f"n_nodes must be >= 1, got {n_nodes!r}")
    grid = solve_symmetric_grid(
        np.asarray(windows, dtype=float), n_nodes, params.max_backoff_stage
    )
    tau = grid.tau
    cost = 0.0 if ignore_cost else params.cost
    one_minus = 1.0 - tau
    p_idle = one_minus**n_nodes
    p_single = n_nodes * tau * one_minus ** (n_nodes - 1)
    p_tr = 1.0 - p_idle
    expected_slot = (
        p_idle * times.idle_us
        + p_single * times.success_us
        + (p_tr - p_single) * times.collision_us
    )
    collision = 1.0 - one_minus ** (n_nodes - 1)
    payoff = tau * ((1.0 - collision) * params.gain - cost)
    safe_slot = np.where(expected_slot <= 0, 1.0, expected_slot)
    result: FloatArray = np.where(expected_slot <= 0, 0.0, payoff / safe_slot)
    return result


def discounted_utility(
    stage_payoffs: Sequence[float], discount_factor: float
) -> float:
    """Discounted sum ``sum_k delta^k x_k`` of a finite payoff stream."""
    if not 0 < discount_factor < 1:
        raise ParameterError(
            f"discount_factor must lie in (0, 1), got {discount_factor!r}"
        )
    payoffs = np.asarray(list(stage_payoffs), dtype=float)
    if payoffs.size == 0:
        return 0.0
    powers = discount_factor ** np.arange(payoffs.size)
    return float(np.dot(powers, payoffs))
