"""Numerical equilibrium verification (Theorem 2, made checkable).

The paper's Theorem 2 asserts that every symmetric profile in
``[W_c0, W_c*]`` is a Nash equilibrium *of the repeated game with TFT
punishment* - explicitly not of the stage game, where Lemma 4 says
undercutting always pays.  This module turns both halves into
executable checks:

* :func:`stage_deviation_gain` / :func:`is_stage_equilibrium` - the
  one-shot game.  Symmetric profiles are *never* stage equilibria
  (except degenerate corners): the best stage deviation is to undercut.
  This is the quantitative reason the paper needs the repeated game.
* :func:`tft_deviation_gain` / :func:`verify_theorem2` - the repeated
  game under TFT punishment with reaction lag ``m`` and discount
  ``delta``.  A deviation to ``W' != W_c`` earns the Lemma 4 windfall
  for ``m`` stages and the degraded converged payoff forever after
  (downward deviations), or an immediate loss (upward deviations, which
  TFT pulls back after ``m`` stages).  ``verify_theorem2`` sweeps
  deviation candidates for every window in the Theorem 2 family and
  reports the largest discounted gain found - non-positive means the
  family verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.game.definition import MACGame
from repro.game.equilibrium import EquilibriumAnalysis, analyze_equilibria

__all__ = [
    "Theorem2Report",
    "is_stage_equilibrium",
    "stage_deviation_gain",
    "tft_deviation_gain",
    "verify_theorem2",
]


def stage_deviation_gain(
    game: MACGame, common_window: int, deviation_window: int
) -> float:
    """One-shot gain of a unilateral deviation from a symmetric profile.

    Positive for downward deviations (Lemma 4), negative for upward
    ones.
    """
    n = game.n_players
    symmetric = float(game.stage_payoffs([common_window] * n)[0])
    deviated = float(
        game.stage_payoffs(
            [deviation_window] + [common_window] * (n - 1)
        )[0]
    )
    return deviated - symmetric


def is_stage_equilibrium(
    game: MACGame,
    common_window: int,
    *,
    candidates: Optional[Sequence[int]] = None,
) -> bool:
    """Whether a symmetric profile is a NE of the *stage* game.

    Expected to be false throughout the interior of the strategy space:
    the stage best response undercuts (Lemma 4), which is exactly why
    the paper's equilibria live in the repeated game.
    """
    for candidate in _candidates(game, common_window, candidates):
        if candidate == common_window:
            continue
        if stage_deviation_gain(game, common_window, candidate) > 1e-15:
            return False
    return True


def tft_deviation_gain(
    game: MACGame,
    common_window: int,
    deviation_window: int,
    *,
    discount: Optional[float] = None,
    reaction_stages: int = 1,
) -> float:
    """Discounted gain of deviating once and facing TFT forever.

    Deviation dynamics under the paper's TFT:

    * ``W' < W_c``: the deviator collects the Lemma 4 windfall for
      ``reaction_stages`` stages; then everyone sits on ``W'`` forever
      (TFT never climbs back).
    * ``W' > W_c``: the deviator loses for ``reaction_stages`` stages
      (Lemma 4, upward case) and is dragged back to ``W_c`` afterwards
      by its own TFT rule - so the tail payoff is the symmetric one.

    Parameters
    ----------
    game:
        The stage game.
    common_window:
        The symmetric profile deviated from.
    deviation_window:
        The deviator's window.
    discount:
        ``delta``; defaults to the game's (long-sighted) discount.
    reaction_stages:
        TFT reaction lag ``m >= 1``.

    Returns
    -------
    float
        ``U(deviate) - U(conform)`` under the given discounting.
    """
    if discount is None:
        discount = game.discount_factor
    if not 0.0 < discount < 1.0:
        raise ParameterError(f"discount must lie in (0, 1), got {discount!r}")
    if reaction_stages < 1:
        raise ParameterError(
            f"reaction_stages must be >= 1, got {reaction_stages!r}"
        )
    n = game.n_players
    symmetric = float(game.stage_payoffs([common_window] * n)[0])
    mixed = float(
        game.stage_payoffs(
            [deviation_window] + [common_window] * (n - 1)
        )[0]
    )
    head = (1.0 - discount**reaction_stages) / (1.0 - discount)
    tail = discount**reaction_stages / (1.0 - discount)
    if deviation_window < common_window:
        converged = float(
            game.stage_payoffs([deviation_window] * n)[0]
        )
    else:
        converged = symmetric  # dragged back to the common window
    payoff_deviate = head * mixed + tail * converged
    payoff_conform = symmetric / (1.0 - discount)
    return payoff_deviate - payoff_conform


@dataclass(frozen=True)
class Theorem2Report:
    """Verification sweep over the Theorem 2 NE family.

    Attributes
    ----------
    analysis:
        The underlying equilibrium analysis.
    checked_windows:
        The family members verified (subsampled for large families).
    worst_gain:
        The largest TFT-punished deviation gain found anywhere in the
        sweep; the family verifies iff this is <= 0 (to tolerance).
    worst_case:
        ``(common_window, deviation_window)`` attaining ``worst_gain``.
    stage_equilibria:
        Family members that are also stage-game equilibria (expected
        empty - the contrast the module exists to show).
    """

    analysis: EquilibriumAnalysis
    checked_windows: List[int]
    worst_gain: float
    worst_case: Tuple[int, int]
    stage_equilibria: List[int]

    @property
    def verified(self) -> bool:
        """Whether no profitable TFT-punished deviation was found."""
        scale = abs(self.analysis.utility_at_star) or 1.0
        return self.worst_gain <= 1e-9 * scale


def _candidates(
    game: MACGame,
    common_window: int,
    candidates: Optional[Sequence[int]],
) -> List[int]:
    if candidates is not None:
        return sorted({int(c) for c in candidates})
    lo, hi = game.params.cw_min, game.params.cw_max
    geometric = {
        max(lo, common_window // k) for k in (2, 4, 8, 16)
    } | {
        min(hi, common_window * k) for k in (2, 4)
    } | {
        max(lo, common_window - 1),
        min(hi, common_window + 1),
    }
    geometric.discard(common_window)
    return sorted(geometric)


def verify_theorem2(
    game: MACGame,
    *,
    analysis: Optional[EquilibriumAnalysis] = None,
    max_windows: int = 8,
    reaction_stages: int = 1,
    discount: Optional[float] = None,
) -> Theorem2Report:
    """Sweep the NE family and verify the no-deviation property.

    Parameters
    ----------
    game:
        The MAC game.
    analysis:
        Optional pre-computed equilibrium analysis.
    max_windows:
        Family members checked (evenly subsampled between ``W_c0`` and
        ``W_c*``).
    reaction_stages, discount:
        TFT punishment parameters (defaults: one stage, the game's
        long-sighted discount).

    Returns
    -------
    Theorem2Report
    """
    if analysis is None:
        analysis = analyze_equilibria(game.n_players, game.params, game.times)
    family = list(analysis.ne_windows)
    if len(family) > max_windows:
        indices = np.linspace(0, len(family) - 1, max_windows).round()
        family = sorted({family[int(i)] for i in indices})

    worst_gain = float("-inf")
    worst_case = (family[0], family[0])
    stage_equilibria: List[int] = []
    for window in family:
        if is_stage_equilibrium(game, window):
            stage_equilibria.append(window)
        for candidate in _candidates(game, window, None):
            gain = tft_deviation_gain(
                game,
                window,
                candidate,
                discount=discount,
                reaction_stages=reaction_stages,
            )
            if gain > worst_gain:
                worst_gain = gain
                worst_case = (window, candidate)
    return Theorem2Report(
        analysis=analysis,
        checked_windows=family,
        worst_gain=worst_gain,
        worst_case=worst_case,
        stage_equilibria=stage_equilibria,
    )
