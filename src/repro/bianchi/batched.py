"""Batched, vectorized solvers for the heterogeneous DCF fixed point.

The analytic layer (Theorem 2, best response, deviation and malicious
analysis, the multi-hop game ``G'``) repeatedly solves the coupled system
of equations (2)-(3),

``tau_i = tau(W_i, p_i)``                       (per-node Markov chain)
``p_i   = 1 - prod_{j != i} (1 - tau_j)``       (coupling),

for many window vectors at once: window sweeps, candidate scans,
per-neighbourhood local games.  :mod:`repro.bianchi.fixedpoint` solves one
instance per call through Python-level loops; this module gives the layer
a **batch axis**: ``B`` instances of ``n`` nodes are solved as ``(B, n)``
arrays in one call, with

* an O(n) numerically stable ``log1p``-sum coupling step (no Python
  loops, no leave-one-out products),
* Anderson(m=1)-accelerated damped iteration - typical instances converge
  in tens of iterations instead of the plain damped scheme's budget,
* per-instance convergence masks - finished batch members freeze while
  stragglers keep iterating, so one hard instance does not make the whole
  batch pay, and
* a vectorized damped-Newton fallback (explicit Jacobian, batched
  ``numpy.linalg.solve``) replacing the scalar ``scipy.optimize.root``
  call for instances that exhaust the fixed-point budget.

The symmetric case collapses to one scalar fixed point per instance;
:func:`solve_symmetric_grid` solves a whole grid of common windows as one
array iteration, which is what the window sweeps behind Figures 2/3,
``efficient_window``, ``breakeven_window`` and the multi-hop
quasi-optimality report consume.

Numerical contract: solutions agree with the scalar reference solver
(:func:`repro.bianchi.fixedpoint.solve_heterogeneous_reference`) to
``<= 1e-9`` max abs difference in ``tau`` (both drive the residual of the
same equations below ``~1e-12``); see ``docs/performance.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.typealiases import BoolArray, FloatArray, IntArray
from repro.backends import ComputeBackend, resolve_backend
from repro.contracts import check_probability, check_window, checks_enabled
from repro.errors import ConvergenceError, ParameterError
from repro.obs import enabled as _obs_enabled
from repro.obs.metrics import inc as _obs_inc
from repro.obs.metrics import observe_many as _obs_observe_many
from repro.bianchi.markov import transmission_probability

__all__ = [
    "BatchedFixedPoint",
    "SymmetricGridSolution",
    "collision_probabilities",
    "solve_heterogeneous_batch",
    "solve_symmetric_grid",
]

#: Central clamp for conditional collision probabilities.  ``tau(W, p)``
#: requires ``p < 1``; every coupling step routes through this single
#: constant instead of ad-hoc ``min(p, ...)`` at each call site.
P_MAX = 1.0 - 1e-15

#: Clamp for tau iterates (Anderson extrapolation may overshoot (0, 1)).
_TAU_MIN = 1e-12
_TAU_MAX = 1.0 - 1e-12

_DAMPING = 0.5
_DEFAULT_TOL = 1e-12
_DEFAULT_MAX_ITER = 100_000
#: Reject Anderson extrapolation when the mixing coefficient explodes;
#: the iteration then falls back to the plain damped step for that lane.
_GAMMA_LIMIT = 2.0
_NEWTON_MAX_ITER = 60
_RESIDUAL_LIMIT = 1e-8


# ----------------------------------------------------------------------
# Coupling step
# ----------------------------------------------------------------------
def collision_probabilities(tau: FloatArray) -> FloatArray:
    """``p_i = 1 - prod_{j != i}(1 - tau_j)`` along the last axis.

    Fully vectorized over any leading batch axes and numerically stable:
    the leave-one-out product is evaluated as ``exp(sum_j log1p(-tau_j) -
    log1p(-tau_i))``, which is O(n) per instance and avoids the precision
    loss of explicit division when some ``1 - tau_j`` is tiny.  Instances
    containing ``tau_j = 1`` are handled exactly (everyone else collides
    with certainty).  The result is clamped to :data:`P_MAX` so it can be
    fed straight back into ``tau(W, p)``.

    Parameters
    ----------
    tau:
        Transmission probabilities, shape ``(..., n)`` with ``n >= 1``.

    Returns
    -------
    numpy.ndarray
        Collision probabilities of the same shape.
    """
    arr = np.asarray(tau, dtype=float)
    if arr.shape[-1] < 1:
        raise ParameterError("tau must have at least one node entry")
    one_minus = 1.0 - arr
    zero = one_minus <= 0.0
    if np.any(zero):
        # A zero factor annihilates every leave-one-out product except
        # its own: p_i = 1 unless i holds the *only* zero factor.
        safe_tau = np.where(zero, 0.0, arr)
        logs = np.log1p(-safe_tau)
        total = logs.sum(axis=-1, keepdims=True)
        loo_nonzero = np.exp(total - logs)
        others_zero = (zero.sum(axis=-1, keepdims=True) - zero) > 0
        prod_others = np.where(others_zero, 0.0, loo_nonzero)
        p = 1.0 - prod_others
    else:
        logs = np.log1p(-arr)
        total = logs.sum(axis=-1, keepdims=True)
        p = 1.0 - np.exp(total - logs)
    return np.minimum(p, P_MAX)


# ----------------------------------------------------------------------
# Heterogeneous batch solver
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchedFixedPoint:
    """Solutions of ``B`` heterogeneous fixed-point instances.

    Attributes
    ----------
    windows:
        Per-instance window vectors, shape ``(B, n)``.
    tau:
        Transmission probabilities at the fixed points, shape ``(B, n)``.
    collision:
        Conditional collision probabilities, shape ``(B, n)``.
    residual:
        Per-instance max-norm residual of ``tau - tau(W, p)``, shape
        ``(B,)``.
    iterations:
        Accelerated fixed-point iterations each instance consumed before
        its convergence mask froze it, shape ``(B,)``.
    newton:
        Boolean mask of instances the vectorized Newton fallback
        finished (their ``iterations`` count the exhausted fixed-point
        budget), shape ``(B,)``.
    """

    windows: FloatArray
    tau: FloatArray
    collision: FloatArray
    residual: FloatArray
    iterations: IntArray
    newton: BoolArray

    @property
    def n_instances(self) -> int:
        """Batch size ``B``."""
        return int(self.tau.shape[0])

    @property
    def n_nodes(self) -> int:
        """Nodes per instance ``n``."""
        return int(self.tau.shape[1])


def _validate_batch_windows(windows: object) -> FloatArray:
    w = np.asarray(windows, dtype=float)
    if w.ndim == 1:
        w = w[None, :]
    if w.ndim != 2 or w.shape[0] < 1 or w.shape[1] < 1:
        raise ParameterError(
            "windows must be a non-empty (B, n) array of window vectors, "
            f"got shape {w.shape!r}"
        )
    check_window(w, "windows")
    return w


def _tau_step(w: FloatArray, tau: FloatArray, max_stage: int) -> FloatArray:
    """One coupling sweep ``tau -> tau(W, p(tau))`` on ``(B, n)`` arrays."""
    p = collision_probabilities(tau)
    return transmission_probability(w, p, max_stage)


def solve_heterogeneous_batch(
    windows: Union[Sequence[Sequence[float]], FloatArray],
    max_stage: int,
    *,
    tol: float = _DEFAULT_TOL,
    max_iterations: int = _DEFAULT_MAX_ITER,
    initial_tau: Optional[FloatArray] = None,
    backend: Union[None, str, ComputeBackend] = None,
) -> BatchedFixedPoint:
    """Solve ``B`` heterogeneous ``(tau, p)`` systems in one call.

    Anderson(m=1)-accelerated damped iteration on the stacked ``tau``
    array, with a per-instance convergence mask (converged instances stop
    updating) and a vectorized damped-Newton fallback for instances that
    exhaust ``max_iterations``.

    Parameters
    ----------
    windows:
        Window vectors, shape ``(B, n)`` (a single ``(n,)`` vector is
        promoted to ``B = 1``).
    max_stage:
        Maximum backoff stage ``m`` (shared by all nodes and instances).
    tol:
        Convergence tolerance on the max-norm tau update per instance.
    max_iterations:
        Fixed-point budget before an instance is handed to the Newton
        fallback.
    initial_tau:
        Optional warm start, shape ``(n,)`` or ``(B, n)``.
    backend:
        Compute backend for the iteration: a registered name, a
        :class:`~repro.backends.ComputeBackend` instance, or ``None``
        for the configured default.  Backends that accelerate the fixed
        point (``numba``, ``cnative``, ``python``) run a per-lane damped
        iteration; lanes they fail to converge - and all lanes on
        backends without fixed-point support - go through this module's
        numpy Anderson/Newton path.  Every backend is pinned to the
        numpy solution within ``1e-9`` by the equivalence suite.

    Returns
    -------
    BatchedFixedPoint

    Raises
    ------
    ConvergenceError
        If some instance's residual exceeds ``1e-8`` even after the
        Newton fallback.
    """
    w = _validate_batch_windows(windows)
    n_batch, n_nodes = w.shape
    backend_obj = (
        backend
        if isinstance(backend, ComputeBackend)
        else resolve_backend(backend)
    )
    native = backend_obj.supports_fixed_point

    if n_nodes == 1:
        # A lone node never collides: p = 0, tau = tau(W, 0), exactly.
        tau = transmission_probability(w, np.zeros_like(w), max_stage)
        if _obs_enabled():
            _obs_inc("bianchi.solves", n_batch, kind="heterogeneous")
            _obs_inc("bianchi.method", n_batch, method="closed-form")
        return BatchedFixedPoint(
            windows=w,
            tau=tau,
            collision=np.zeros_like(w),
            residual=np.zeros(n_batch),
            iterations=np.zeros(n_batch, dtype=np.int64),
            newton=np.zeros(n_batch, dtype=bool),
        )

    if initial_tau is not None:
        tau = np.array(np.broadcast_to(np.asarray(initial_tau, dtype=float), w.shape))
        if tau.shape != w.shape:  # pragma: no cover - broadcast_to raises first
            raise ParameterError("initial_tau must broadcast to windows' shape")
        tau = np.clip(tau, _TAU_MIN, _TAU_MAX)
    else:
        tau = np.full_like(w, 0.1)

    if native:
        # The backend runs a per-lane damped iteration in compiled code;
        # lanes it reports unconverged fall through to the Newton
        # fallback exactly like Anderson stragglers.
        tau, iterations, converged = backend_obj.solve_batch(
            w,
            max_stage,
            tol=tol,
            max_iterations=max_iterations,
            initial_tau=tau,
        )
        active = np.flatnonzero(~converged)
        return _finalize_batch(
            w, tau, iterations, active, max_stage, tol,
            method=f"damped-{backend_obj.name}",
        )

    iterations = np.zeros(n_batch, dtype=np.int64)
    active = np.arange(n_batch)
    x = tau.copy()
    # Anderson(1) history of the active lanes.
    x_prev: Optional[FloatArray] = None
    f_prev: Optional[FloatArray] = None

    for sweep in range(1, max_iterations + 1):
        w_act = w[active]
        g = _tau_step(w_act, x, max_stage)
        f = g - x
        if f_prev is None:
            x_next = x + _DAMPING * f
        else:
            df = f - f_prev
            num = (f * df).sum(axis=-1)
            den = (df * df).sum(axis=-1)
            safe_den = np.where(den == 0.0, 1.0, den)
            gamma = num / safe_den
            usable = (den != 0.0) & np.isfinite(gamma) & (
                np.abs(gamma) <= _GAMMA_LIMIT
            )
            gamma = np.where(usable, gamma, 0.0)[:, None]
            x_next = x + _DAMPING * f - gamma * (
                x - x_prev + _DAMPING * df
            )
        x_next = np.clip(x_next, _TAU_MIN, _TAU_MAX)
        delta = np.max(np.abs(x_next - x), axis=-1)
        iterations[active] = sweep
        converged = delta < tol
        tau[active] = x_next
        if np.all(converged):
            active = active[:0]
            break
        keep = ~converged
        active = active[keep]
        x_prev = x[keep]
        f_prev = f[keep]
        x = x_next[keep]

    return _finalize_batch(
        w, tau, iterations, active, max_stage, tol, method="anderson"
    )


def _finalize_batch(
    w: FloatArray,
    tau: FloatArray,
    iterations: IntArray,
    active: IntArray,
    max_stage: int,
    tol: float,
    *,
    method: str,
) -> BatchedFixedPoint:
    """Newton-finish stragglers, then validate and package the batch.

    Shared by the numpy Anderson path and every accelerated backend:
    ``active`` indexes the lanes whose iteration did not converge, and
    the residual/contract checks below hold regardless of which kernel
    produced ``tau`` - this is what makes backends interchangeable.
    """
    n_batch = w.shape[0]
    newton = np.zeros(n_batch, dtype=bool)
    if active.size:
        tau[active] = _newton_fallback(w[active], tau[active], max_stage, tol)
        newton[active] = True

    p = collision_probabilities(tau)
    residual = np.max(
        np.abs(tau - transmission_probability(w, p, max_stage)), axis=-1
    )
    worst = float(residual.max())
    if worst > _RESIDUAL_LIMIT:
        index = int(residual.argmax())
        raise ConvergenceError(
            f"fixed point residual {worst:.3e} exceeds tolerance for "
            f"windows={w[index]!r} (batch instance {index})"
        )
    if checks_enabled():
        # Theorem 2 rests on tau_i, p_i being probabilities; catch a
        # numerically corrupted batch before it contaminates the
        # utility/equilibrium layers.
        check_probability(tau, "tau")
        check_probability(p, "collision")
    if _obs_enabled():
        newton_count = int(newton.sum())
        _obs_inc("bianchi.solves", n_batch, kind="heterogeneous")
        if n_batch > newton_count:
            _obs_inc(
                "bianchi.method", n_batch - newton_count, method=method
            )
        if newton_count:
            _obs_inc("bianchi.method", newton_count, method="newton")
            _obs_inc("bianchi.fallbacks", newton_count, method="newton")
        _obs_observe_many(
            "bianchi.iterations",
            iterations.tolist(),
            kind="heterogeneous",
        )
    return BatchedFixedPoint(
        windows=w,
        tau=tau,
        collision=p,
        residual=residual,
        iterations=iterations,
        newton=newton,
    )


def _series_derivative(p: FloatArray, max_stage: int) -> FloatArray:
    """``d/dp [p * sum_{j=0}^{m-1} (2p)^j] = sum_{j=0}^{m-1} (j+1) 2^j p^j``."""
    acc = np.zeros_like(p)
    power = np.ones_like(p)
    for j in range(max_stage):
        acc += float((j + 1) * (2**j)) * power
        power = power * p
    return acc


def _newton_fallback(
    w: FloatArray, tau0: FloatArray, max_stage: int, tol: float
) -> FloatArray:
    """Vectorized damped Newton on ``F(x) = x - tau(W, p(x))``.

    Solves all straggler instances simultaneously with the explicit
    Jacobian ``J = I - (dtau/dp) (dp/dx)`` and batched
    ``numpy.linalg.solve``; a step-halving line search keeps the residual
    monotone.  Replaces the per-instance ``scipy.optimize.root`` call of
    the scalar path.
    """
    n = w.shape[-1]
    x = np.clip(tau0, 1e-6, 1.0 - 1e-6)
    target = max(tol, 1e-13)
    eye = np.eye(n)

    def residual_vec(values: FloatArray) -> FloatArray:
        return values - transmission_probability(
            w, collision_probabilities(values), max_stage
        )

    f = residual_vec(x)
    for _ in range(_NEWTON_MAX_ITER):
        norms = np.max(np.abs(f), axis=-1)
        if float(norms.max()) < target:
            break
        p = collision_probabilities(x)
        series = np.zeros_like(p)
        power = np.ones_like(p)
        for _j in range(max_stage):
            power = power * (2.0 * p)
            series += power
        series = 1.0 + series - power  # sum_{j=0}^{m-1} (2p)^j, via shift
        denom = 1.0 + w + p * w * series
        dtau_dp = -2.0 * w * _series_derivative(p, max_stage) / (denom * denom)
        # dp_i/dx_j = (1 - p_i) / (1 - x_j) off the diagonal.
        outer = (dtau_dp * (1.0 - p))[:, :, None] / (1.0 - x)[:, None, :]
        idx = np.arange(n)
        outer[:, idx, idx] = 0.0
        jacobian = eye[None, :, :] - outer
        try:
            # (B, n) rhs must be a stack of column vectors, not one matrix.
            step = np.linalg.solve(jacobian, f[..., None])[..., 0]
        except np.linalg.LinAlgError as error:  # pragma: no cover - singular J
            raise ConvergenceError(
                f"Newton fallback hit a singular Jacobian: {error}"
            ) from error
        scale = np.ones((x.shape[0], 1))
        improved = None
        for _halving in range(8):
            candidate = np.clip(x - scale * step, _TAU_MIN, _TAU_MAX)
            f_candidate = residual_vec(candidate)
            improved = np.max(np.abs(f_candidate), axis=-1) <= norms
            if np.all(improved):
                break
            scale = np.where(improved[:, None], scale, scale * 0.5)
        x = np.clip(x - scale * step, _TAU_MIN, _TAU_MAX)
        f = residual_vec(x)
    return x


# ----------------------------------------------------------------------
# Symmetric grid solver
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SymmetricGridSolution:
    """Symmetric fixed points for a whole grid of common windows.

    One instance per grid window, all sharing the network size
    ``n_nodes``; this is the array the window sweeps of Figures 2/3 and
    the equilibrium searches consume in one call.

    Attributes
    ----------
    windows:
        The window grid, shape ``(G,)``.
    n_nodes:
        Common network size ``n``.
    tau:
        Common transmission probability per grid window, shape ``(G,)``.
    collision:
        ``p = 1 - (1 - tau)^{n-1}`` per grid window, shape ``(G,)``.
    residual:
        Scalar residual per grid window, shape ``(G,)``.
    iterations:
        Damped iterations per grid window (frozen lanes stop counting),
        shape ``(G,)``.
    """

    windows: FloatArray
    n_nodes: int
    tau: FloatArray
    collision: FloatArray
    residual: FloatArray
    iterations: IntArray

    @property
    def n_windows(self) -> int:
        """Grid size ``G``."""
        return int(self.windows.shape[0])


def solve_symmetric_grid(
    windows: Union[Sequence[float], FloatArray],
    n_nodes: int,
    max_stage: int,
    *,
    tol: float = _DEFAULT_TOL,
    max_iterations: int = _DEFAULT_MAX_ITER,
) -> SymmetricGridSolution:
    """Solve the symmetric fixed point for every window in a grid at once.

    Runs the same damped iteration as the scalar
    :func:`repro.bianchi.fixedpoint.solve_symmetric`, vectorized across
    the grid with per-window convergence masks (each lane freezes the
    first sweep its update drops below ``tol``), so results match the
    scalar solver to floating-point noise while the whole grid costs one
    array iteration.

    Parameters
    ----------
    windows:
        Common contention windows to solve, shape ``(G,)`` (real values
        accepted, duplicates allowed).
    n_nodes:
        Network size ``n >= 1``.
    max_stage:
        Maximum backoff stage ``m``.
    tol, max_iterations:
        Damped-iteration stopping rule, as in the scalar solver.

    Returns
    -------
    SymmetricGridSolution
    """
    w = np.asarray(windows, dtype=float)
    if w.ndim != 1 or w.shape[0] < 1:
        raise ParameterError("windows must be a non-empty 1-D grid")
    if n_nodes < 1:
        raise ParameterError(f"n_nodes must be >= 1, got {n_nodes!r}")
    check_window(w, "windows")
    n_grid = w.shape[0]

    if n_nodes == 1:
        tau = transmission_probability(w, np.zeros_like(w), max_stage)
        if _obs_enabled():
            _obs_inc("bianchi.solves", n_grid, kind="symmetric-grid")
            _obs_inc("bianchi.method", n_grid, method="closed-form")
        return SymmetricGridSolution(
            windows=w,
            n_nodes=1,
            tau=tau,
            collision=np.zeros_like(w),
            residual=np.zeros_like(w),
            iterations=np.zeros(n_grid, dtype=np.int64),
        )

    tau = np.full(n_grid, 0.1)
    iterations = np.zeros(n_grid, dtype=np.int64)
    active = np.arange(n_grid)
    x = tau.copy()
    for sweep in range(1, max_iterations + 1):
        p = np.minimum(1.0 - (1.0 - x) ** (n_nodes - 1), P_MAX)
        target = transmission_probability(w[active], p, max_stage)
        updated = _DAMPING * x + (1.0 - _DAMPING) * target
        delta = np.abs(updated - x)
        iterations[active] = sweep
        tau[active] = updated
        converged = delta < tol
        if np.all(converged):
            break
        keep = ~converged
        active = active[keep]
        x = updated[keep]
    else:
        raise ConvergenceError(
            f"symmetric grid fixed point did not converge for "
            f"n={n_nodes!r} (worst window {w[active][0]!r})"
        )

    p = np.minimum(1.0 - (1.0 - tau) ** (n_nodes - 1), P_MAX)
    residual = np.abs(tau - transmission_probability(w, p, max_stage))
    if checks_enabled():
        check_probability(tau, "tau")
        check_probability(p, "collision")
    if _obs_enabled():
        _obs_inc("bianchi.solves", n_grid, kind="symmetric-grid")
        _obs_inc("bianchi.method", n_grid, method="damped")
        _obs_observe_many(
            "bianchi.iterations",
            iterations.tolist(),
            kind="symmetric-grid",
        )
    return SymmetricGridSolution(
        windows=w,
        n_nodes=int(n_nodes),
        tau=tau,
        collision=p,
        residual=residual,
        iterations=iterations,
    )
