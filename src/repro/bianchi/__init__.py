"""Bianchi-style Markov chain model of saturated IEEE 802.11 DCF.

This subpackage implements Section III of the paper: a two-dimensional
backoff Markov chain per node, generalised to *heterogeneous* contention
windows (each node may use its own ``W_i``), the coupled fixed point in
``(tau_1..tau_n, p_1..p_n)``, and the slot statistics / normalized
throughput built on top of its solution.
"""

from repro.bianchi.markov import (
    BackoffChain,
    stationary_distribution,
    transmission_probability,
)
from repro.bianchi.batched import (
    BatchedFixedPoint,
    SymmetricGridSolution,
    collision_probabilities,
    solve_heterogeneous_batch,
    solve_symmetric_grid,
)
from repro.bianchi.meanfield import (
    MeanFieldSolution,
    MeanFieldStatistics,
    expand_types,
    mean_field_statistics,
    solve_mean_field,
    solve_mean_field_batch,
    type_collision_probabilities,
)
from repro.bianchi.fixedpoint import (
    FixedPointSolution,
    SymmetricSolution,
    solve_heterogeneous,
    solve_heterogeneous_reference,
    solve_symmetric,
    symmetric_cache_info,
)
from repro.bianchi.throughput import (
    SlotStatistics,
    normalized_throughput,
    slot_statistics,
)
from repro.bianchi.delay import (
    AccessDelay,
    access_delay_jitter,
    expected_access_delay,
    mean_backoff_slots,
)
from repro.bianchi.fairness import jain_index, throughput_shares

__all__ = [
    "AccessDelay",
    "BackoffChain",
    "BatchedFixedPoint",
    "FixedPointSolution",
    "MeanFieldSolution",
    "MeanFieldStatistics",
    "SlotStatistics",
    "SymmetricGridSolution",
    "SymmetricSolution",
    "access_delay_jitter",
    "collision_probabilities",
    "expand_types",
    "expected_access_delay",
    "jain_index",
    "mean_backoff_slots",
    "mean_field_statistics",
    "normalized_throughput",
    "throughput_shares",
    "slot_statistics",
    "solve_heterogeneous",
    "solve_heterogeneous_batch",
    "solve_heterogeneous_reference",
    "solve_mean_field",
    "solve_mean_field_batch",
    "solve_symmetric",
    "solve_symmetric_grid",
    "stationary_distribution",
    "symmetric_cache_info",
    "transmission_probability",
    "type_collision_probabilities",
]
