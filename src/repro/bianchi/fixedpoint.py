"""Coupled fixed point of the heterogeneous DCF model (equations (2)-(3)).

Given per-node contention windows ``W_1..W_n``, the model is the system

``tau_i = tau(W_i, p_i)``          (per-node Markov chain, equation (2))
``p_i   = 1 - prod_{j != i} (1 - tau_j)``   (coupling, equation (3))

which is ``2n`` equations in ``2n`` unknowns.  Production solves go
through the batched array kernel in :mod:`repro.bianchi.batched`:
:func:`solve_heterogeneous` is a thin ``B = 1`` wrapper around
:func:`~repro.bianchi.batched.solve_heterogeneous_batch`, and the
memoized :func:`solve_symmetric` wraps a one-window
:func:`~repro.bianchi.batched.solve_symmetric_grid` call.  The original
per-node Python loop survives as :func:`solve_heterogeneous_reference`
(with a ``scipy.optimize.root`` fallback) so tests and benchmarks can
pin the batched kernel against the legacy scalar semantics.

For the symmetric case (all nodes share one ``W``) the system collapses to
a scalar fixed point ``tau = tau(W, 1 - (1 - tau)^{n-1})``; the paper notes
(after Bianchi) that this admits a unique solution.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence

import numpy as np
from scipy import optimize

from repro.typealiases import FloatArray
from repro.contracts import check_probability, check_window, checks_enabled
from repro.errors import ConvergenceError, ParameterError
from repro.obs import enabled as _obs_enabled
from repro.obs.metrics import inc as _obs_inc
from repro.obs.metrics import observe as _obs_observe
from repro.bianchi.batched import (
    collision_probabilities,
    solve_heterogeneous_batch,
    solve_symmetric_grid,
)
from repro.bianchi.markov import transmission_probability

__all__ = [
    "FixedPointSolution",
    "SymmetricSolution",
    "solve_heterogeneous",
    "solve_heterogeneous_reference",
    "solve_symmetric",
    "symmetric_cache_info",
]

_DEFAULT_TOL = 1e-12
_DEFAULT_MAX_ITER = 100_000
_DAMPING = 0.5


@dataclass(frozen=True)
class FixedPointSolution:
    """Solution of the heterogeneous fixed point.

    Attributes
    ----------
    windows:
        The per-node contention windows the solution corresponds to.
    tau:
        Per-node transmission probabilities ``tau_i``.
    collision:
        Per-node conditional collision probabilities ``p_i``.
    residual:
        Max-norm residual of ``tau_i - tau(W_i, p_i)`` at the solution.
    iterations:
        Number of fixed-point iterations consumed.  When ``method`` is a
        fallback (``"newton"``/``"hybr"``) this counts the exhausted
        fixed-point budget (``-1`` for the legacy scipy path, which does
        not iterate the damped map at all).
    method:
        How the solution was obtained: ``"closed-form"`` (``n = 1``),
        ``"anderson"`` (accelerated batched iteration), ``"newton"``
        (vectorized Newton fallback), ``"damped"`` (legacy reference
        loop) or ``"hybr"`` (legacy ``scipy.optimize.root`` fallback).
    """

    windows: FloatArray
    tau: FloatArray
    collision: FloatArray
    residual: float
    iterations: int
    method: str = "anderson"

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the solved network."""
        return int(self.tau.shape[0])


@dataclass(frozen=True)
class SymmetricSolution:
    """Solution of the symmetric (common-``W``) fixed point.

    Attributes
    ----------
    window:
        The common contention window ``W``.
    n_nodes:
        Network size ``n``.
    tau:
        Common transmission probability.
    collision:
        Common conditional collision probability ``p = 1-(1-tau)^{n-1}``.
    residual:
        Scalar residual at the solution.
    iterations:
        Number of damped iterations used.
    """

    window: float
    n_nodes: int
    tau: float
    collision: float
    residual: float
    iterations: int


def _collision_probabilities(tau: FloatArray) -> FloatArray:
    """``p_i = 1 - prod_{j != i}(1 - tau_j)``, computed stably.

    Delegates to the O(n) vectorized ``log1p``-sum kernel of
    :func:`repro.bianchi.batched.collision_probabilities`; the result is
    already clamped below 1, so callers feed it straight into
    ``tau(W, p)`` without per-site ``min(p, ...)`` guards.
    """
    return collision_probabilities(tau)


def solve_heterogeneous(
    windows: Sequence[float],
    max_stage: int,
    *,
    tol: float = _DEFAULT_TOL,
    max_iterations: int = _DEFAULT_MAX_ITER,
    initial_tau: Optional[Sequence[float]] = None,
) -> FixedPointSolution:
    """Solve the coupled ``(tau, p)`` system for per-node windows.

    Thin ``B = 1`` wrapper over the batched Anderson-accelerated solver
    (:func:`repro.bianchi.batched.solve_heterogeneous_batch`); callers
    with many window vectors should batch them instead of looping here.
    Results match :func:`solve_heterogeneous_reference` to ``<= 1e-9``
    max abs difference in ``tau``.

    Parameters
    ----------
    windows:
        Contention window of each node (length ``n >= 1``).
    max_stage:
        Maximum backoff stage ``m`` (shared by all nodes).
    tol:
        Convergence tolerance on the max-norm of the tau update.
    max_iterations:
        Iteration budget for the accelerated scheme before the batched
        Newton fallback takes over.
    initial_tau:
        Optional warm start for the tau vector.

    Returns
    -------
    FixedPointSolution

    Raises
    ------
    ConvergenceError
        If neither the accelerated iteration nor the Newton fallback
        reaches the requested tolerance.
    """
    w = np.asarray(list(windows), dtype=float)
    if w.ndim != 1 or w.shape[0] < 1:
        raise ParameterError("windows must be a non-empty 1-D sequence")
    check_window(w, "windows")
    n = w.shape[0]

    if n == 1:
        # A lone node never collides: p = 0, tau = tau(W, 0).
        tau = np.array([transmission_probability(w[0], 0.0, max_stage)])
        return FixedPointSolution(
            windows=w,
            tau=tau,
            collision=np.zeros(1),
            residual=0.0,
            iterations=0,
            method="closed-form",
        )

    start: Optional[FloatArray] = None
    if initial_tau is not None:
        start = np.asarray(list(initial_tau), dtype=float)
        if start.shape != w.shape:
            raise ParameterError("initial_tau must match windows in length")

    batch = solve_heterogeneous_batch(
        w[None, :],
        max_stage,
        tol=tol,
        max_iterations=max_iterations,
        initial_tau=start,
    )
    return FixedPointSolution(
        windows=w,
        tau=batch.tau[0],
        collision=batch.collision[0],
        residual=float(batch.residual[0]),
        iterations=int(batch.iterations[0]),
        method="newton" if bool(batch.newton[0]) else "anderson",
    )


def solve_heterogeneous_reference(
    windows: Sequence[float],
    max_stage: int,
    *,
    tol: float = _DEFAULT_TOL,
    max_iterations: int = _DEFAULT_MAX_ITER,
    initial_tau: Optional[Sequence[float]] = None,
) -> FixedPointSolution:
    """Legacy scalar solver: one damped Python-loop instance per call.

    Kept as the semantic reference the batched kernel is verified and
    benchmarked against (see ``tests/property`` and
    ``benchmarks/test_bench_fixedpoint.py``).  Fallback solves are
    reported distinguishably: ``method="hybr"`` with ``iterations=-1``
    instead of masquerading as instant damped convergence.
    """
    w = np.asarray(list(windows), dtype=float)
    if w.ndim != 1 or w.shape[0] < 1:
        raise ParameterError("windows must be a non-empty 1-D sequence")
    check_window(w, "windows")
    n = w.shape[0]

    if n == 1:
        tau = np.array([transmission_probability(w[0], 0.0, max_stage)])
        return FixedPointSolution(
            windows=w,
            tau=tau,
            collision=np.zeros(1),
            residual=0.0,
            iterations=0,
            method="closed-form",
        )

    if initial_tau is not None:
        tau = np.asarray(list(initial_tau), dtype=float)
        if tau.shape != w.shape:
            raise ParameterError("initial_tau must match windows in length")
    else:
        tau = np.full(n, 0.1)

    def step(current: FloatArray) -> FloatArray:
        # _collision_probabilities clamps centrally, so the per-node
        # evaluations need no ad-hoc min(p, 1 - eps) guard.
        p = _collision_probabilities(current)
        return np.array(
            [
                transmission_probability(float(w[i]), float(p[i]), max_stage)
                for i in range(n)
            ]
        )

    iterations = 0
    method = "damped"
    for iterations in range(1, max_iterations + 1):
        updated = _DAMPING * tau + (1.0 - _DAMPING) * step(tau)
        delta = float(np.max(np.abs(updated - tau)))
        tau = updated
        if delta < tol:
            break
    else:
        tau = _root_fallback(w, max_stage, tau)
        iterations = -1
        method = "hybr"

    p = _collision_probabilities(tau)
    residual = float(np.max(np.abs(tau - step(tau))))
    if residual > 1e-8:
        raise ConvergenceError(
            f"fixed point residual {residual:.3e} exceeds tolerance for "
            f"windows={w!r}"
        )
    if checks_enabled():
        # Theorem 2 rests on tau_i, p_i being probabilities; catch a
        # numerically corrupted solution before it contaminates the
        # utility/equilibrium layers.
        check_probability(tau, "tau")
        check_probability(p, "collision")
    if _obs_enabled():
        _obs_inc("bianchi.solves", 1, kind="reference")
        _obs_inc("bianchi.method", 1, method=method)
        if method == "hybr":
            _obs_inc("bianchi.fallbacks", 1, method="hybr")
        else:
            _obs_observe("bianchi.iterations", iterations, kind="reference")
    return FixedPointSolution(
        windows=w,
        tau=tau,
        collision=p,
        residual=residual,
        iterations=iterations,
        method=method,
    )


def _root_fallback(w: FloatArray, max_stage: int, tau0: FloatArray) -> FloatArray:
    """Solve the system with ``scipy.optimize.root`` as a last resort."""
    n = w.shape[0]

    def residual(tau: FloatArray) -> FloatArray:
        clipped = np.clip(tau, 1e-12, 1.0 - 1e-12)
        p = _collision_probabilities(clipped)
        target = np.array(
            [
                transmission_probability(float(w[i]), float(p[i]), max_stage)
                for i in range(n)
            ]
        )
        return clipped - target

    result = optimize.root(residual, np.clip(tau0, 1e-6, 1 - 1e-6), method="hybr")
    if not result.success:
        raise ConvergenceError(
            f"heterogeneous fixed point did not converge for windows={w!r}: "
            f"{result.message}"
        )
    return np.clip(result.x, 1e-12, 1.0 - 1e-12)


def solve_symmetric(
    window: float,
    n_nodes: int,
    max_stage: int,
    *,
    tol: float = _DEFAULT_TOL,
    max_iterations: int = _DEFAULT_MAX_ITER,
) -> SymmetricSolution:
    """Solve the scalar symmetric fixed point for a common window.

    Results are memoized: scattered scalar queries (the multi-hop local
    games, spot checks) re-solve the same ``(W, n)`` pairs many times,
    and the solution object is frozen, so identical arguments return the
    cached instance.  Whole window sweeps should call
    :func:`repro.bianchi.batched.solve_symmetric_grid` instead and pay
    one array iteration for the entire grid.

    Parameters
    ----------
    window:
        Common contention window ``W`` (real values accepted).
    n_nodes:
        Network size ``n >= 1``.
    max_stage:
        Maximum backoff stage ``m``.

    Returns
    -------
    SymmetricSolution

    Raises
    ------
    ConvergenceError
        If the damped iteration does not reach ``tol``; in practice the map
        is a contraction after damping and this does not trigger.
    """
    return _solve_symmetric_cached(
        float(window), int(n_nodes), int(max_stage), float(tol),
        int(max_iterations),
    )


def symmetric_cache_info() -> "functools._CacheInfo":
    """Hit/miss statistics of the symmetric fixed-point memo cache."""
    return _solve_symmetric_cached.cache_info()


@lru_cache(maxsize=65536)
def _solve_symmetric_cached(
    window: float,
    n_nodes: int,
    max_stage: int,
    tol: float,
    max_iterations: int,
) -> SymmetricSolution:
    grid = solve_symmetric_grid(
        np.array([float(window)]),
        n_nodes,
        max_stage,
        tol=tol,
        max_iterations=max_iterations,
    )
    return SymmetricSolution(
        window=float(window),
        n_nodes=int(n_nodes),
        tau=float(grid.tau[0]),
        collision=float(grid.collision[0]),
        residual=float(grid.residual[0]),
        iterations=int(grid.iterations[0]),
    )
