"""Coupled fixed point of the heterogeneous DCF model (equations (2)-(3)).

Given per-node contention windows ``W_1..W_n``, the model is the system

``tau_i = tau(W_i, p_i)``          (per-node Markov chain, equation (2))
``p_i   = 1 - prod_{j != i} (1 - tau_j)``   (coupling, equation (3))

which is ``2n`` equations in ``2n`` unknowns.  We solve it by damped
fixed-point iteration on the ``tau`` vector with a ``scipy.optimize.root``
fallback for stubborn instances, and verify the residual before returning.

For the symmetric case (all nodes share one ``W``) the system collapses to
a scalar fixed point ``tau = tau(W, 1 - (1 - tau)^{n-1})``; the paper notes
(after Bianchi) that this admits a unique solution.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence

import numpy as np
from scipy import optimize

from repro.typealiases import FloatArray
from repro.contracts import check_probability, check_window, checks_enabled
from repro.errors import ConvergenceError, ParameterError
from repro.bianchi.markov import transmission_probability

__all__ = [
    "FixedPointSolution",
    "SymmetricSolution",
    "solve_heterogeneous",
    "solve_symmetric",
    "symmetric_cache_info",
]

_DEFAULT_TOL = 1e-12
_DEFAULT_MAX_ITER = 100_000
_DAMPING = 0.5


@dataclass(frozen=True)
class FixedPointSolution:
    """Solution of the heterogeneous fixed point.

    Attributes
    ----------
    windows:
        The per-node contention windows the solution corresponds to.
    tau:
        Per-node transmission probabilities ``tau_i``.
    collision:
        Per-node conditional collision probabilities ``p_i``.
    residual:
        Max-norm residual of ``tau_i - tau(W_i, p_i)`` at the solution.
    iterations:
        Number of damped iterations used (0 if the root fallback solved it).
    """

    windows: FloatArray
    tau: FloatArray
    collision: FloatArray
    residual: float
    iterations: int

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the solved network."""
        return int(self.tau.shape[0])


@dataclass(frozen=True)
class SymmetricSolution:
    """Solution of the symmetric (common-``W``) fixed point.

    Attributes
    ----------
    window:
        The common contention window ``W``.
    n_nodes:
        Network size ``n``.
    tau:
        Common transmission probability.
    collision:
        Common conditional collision probability ``p = 1-(1-tau)^{n-1}``.
    residual:
        Scalar residual at the solution.
    iterations:
        Number of damped iterations used.
    """

    window: float
    n_nodes: int
    tau: float
    collision: float
    residual: float
    iterations: int


def _collision_probabilities(tau: FloatArray) -> FloatArray:
    """``p_i = 1 - prod_{j != i}(1 - tau_j)``, computed stably.

    Uses log-space products; exact leave-one-out division would lose
    precision when some ``1 - tau_j`` is tiny.
    """
    one_minus = 1.0 - tau
    if np.any(one_minus <= 0.0):
        # Some tau hit 1: everyone else collides with certainty.
        n = tau.shape[0]
        p = np.empty(n)
        for i in range(n):
            others = np.delete(one_minus, i)
            p[i] = 1.0 - float(np.prod(others))
        return p
    logs = np.log(one_minus)
    total = logs.sum()
    return 1.0 - np.exp(total - logs)


def solve_heterogeneous(
    windows: Sequence[float],
    max_stage: int,
    *,
    tol: float = _DEFAULT_TOL,
    max_iterations: int = _DEFAULT_MAX_ITER,
    initial_tau: Optional[Sequence[float]] = None,
) -> FixedPointSolution:
    """Solve the coupled ``(tau, p)`` system for per-node windows.

    Parameters
    ----------
    windows:
        Contention window of each node (length ``n >= 1``).
    max_stage:
        Maximum backoff stage ``m`` (shared by all nodes).
    tol:
        Convergence tolerance on the max-norm of the tau update.
    max_iterations:
        Iteration budget for the damped scheme before falling back to
        ``scipy.optimize.root``.
    initial_tau:
        Optional warm start for the tau vector.

    Returns
    -------
    FixedPointSolution

    Raises
    ------
    ConvergenceError
        If neither the damped iteration nor the root fallback reaches the
        requested tolerance.
    """
    w = np.asarray(list(windows), dtype=float)
    if w.ndim != 1 or w.shape[0] < 1:
        raise ParameterError("windows must be a non-empty 1-D sequence")
    check_window(w, "windows")
    n = w.shape[0]

    if n == 1:
        # A lone node never collides: p = 0, tau = tau(W, 0).
        tau = np.array([transmission_probability(w[0], 0.0, max_stage)])
        return FixedPointSolution(
            windows=w,
            tau=tau,
            collision=np.zeros(1),
            residual=0.0,
            iterations=0,
        )

    if initial_tau is not None:
        tau = np.asarray(list(initial_tau), dtype=float)
        if tau.shape != w.shape:
            raise ParameterError("initial_tau must match windows in length")
    else:
        tau = np.full(n, 0.1)

    def step(current: FloatArray) -> FloatArray:
        p = _collision_probabilities(current)
        return np.array(
            [
                transmission_probability(w[i], min(p[i], 1.0 - 1e-15), max_stage)
                for i in range(n)
            ]
        )

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        updated = _DAMPING * tau + (1.0 - _DAMPING) * step(tau)
        delta = float(np.max(np.abs(updated - tau)))
        tau = updated
        if delta < tol:
            break
    else:
        tau = _root_fallback(w, max_stage, tau)
        iterations = 0

    p = _collision_probabilities(tau)
    residual = float(np.max(np.abs(tau - step(tau))))
    if residual > 1e-8:
        raise ConvergenceError(
            f"fixed point residual {residual:.3e} exceeds tolerance for "
            f"windows={w!r}"
        )
    if checks_enabled():
        # Theorem 2 rests on tau_i, p_i being probabilities; catch a
        # numerically corrupted solution before it contaminates the
        # utility/equilibrium layers.
        check_probability(tau, "tau")
        check_probability(p, "collision")
    return FixedPointSolution(
        windows=w, tau=tau, collision=p, residual=residual, iterations=iterations
    )


def _root_fallback(w: FloatArray, max_stage: int, tau0: FloatArray) -> FloatArray:
    """Solve the system with ``scipy.optimize.root`` as a last resort."""
    n = w.shape[0]

    def residual(tau: FloatArray) -> FloatArray:
        clipped = np.clip(tau, 1e-12, 1.0 - 1e-12)
        p = _collision_probabilities(clipped)
        target = np.array(
            [
                transmission_probability(w[i], min(p[i], 1.0 - 1e-15), max_stage)
                for i in range(n)
            ]
        )
        return clipped - target

    result = optimize.root(residual, np.clip(tau0, 1e-6, 1 - 1e-6), method="hybr")
    if not result.success:
        raise ConvergenceError(
            f"heterogeneous fixed point did not converge for windows={w!r}: "
            f"{result.message}"
        )
    return np.clip(result.x, 1e-12, 1.0 - 1e-12)


def solve_symmetric(
    window: float,
    n_nodes: int,
    max_stage: int,
    *,
    tol: float = _DEFAULT_TOL,
    max_iterations: int = _DEFAULT_MAX_ITER,
) -> SymmetricSolution:
    """Solve the scalar symmetric fixed point for a common window.

    Results are memoized: the window sweeps of Figures 2/3, the
    equilibrium searches and the multi-hop local games all re-solve the
    same ``(W, n)`` pairs many times, and the solution object is frozen,
    so identical arguments return the cached instance.

    Parameters
    ----------
    window:
        Common contention window ``W`` (real values accepted).
    n_nodes:
        Network size ``n >= 1``.
    max_stage:
        Maximum backoff stage ``m``.

    Returns
    -------
    SymmetricSolution

    Raises
    ------
    ConvergenceError
        If the damped iteration does not reach ``tol``; in practice the map
        is a contraction after damping and this does not trigger.
    """
    return _solve_symmetric_cached(
        float(window), int(n_nodes), int(max_stage), float(tol),
        int(max_iterations),
    )


def symmetric_cache_info() -> "functools._CacheInfo":
    """Hit/miss statistics of the symmetric fixed-point memo cache."""
    return _solve_symmetric_cached.cache_info()


@lru_cache(maxsize=65536)
def _solve_symmetric_cached(
    window: float,
    n_nodes: int,
    max_stage: int,
    tol: float,
    max_iterations: int,
) -> SymmetricSolution:
    if n_nodes < 1:
        raise ParameterError(f"n_nodes must be >= 1, got {n_nodes!r}")
    check_window(window, "window")

    if n_nodes == 1:
        tau = transmission_probability(window, 0.0, max_stage)
        return SymmetricSolution(
            window=float(window),
            n_nodes=1,
            tau=tau,
            collision=0.0,
            residual=0.0,
            iterations=0,
        )

    tau = 0.1
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        p = 1.0 - (1.0 - tau) ** (n_nodes - 1)
        target = transmission_probability(window, min(p, 1.0 - 1e-15), max_stage)
        updated = _DAMPING * tau + (1.0 - _DAMPING) * target
        delta = abs(updated - tau)
        tau = updated
        if delta < tol:
            break
    else:
        raise ConvergenceError(
            f"symmetric fixed point did not converge for window={window!r}, "
            f"n={n_nodes!r}"
        )
    p = 1.0 - (1.0 - tau) ** (n_nodes - 1)
    residual = abs(
        tau - transmission_probability(window, min(p, 1.0 - 1e-15), max_stage)
    )
    if checks_enabled():
        check_probability(tau, "tau")
        check_probability(p, "collision")
    return SymmetricSolution(
        window=float(window),
        n_nodes=n_nodes,
        tau=tau,
        collision=p,
        residual=float(residual),
        iterations=iterations,
    )
