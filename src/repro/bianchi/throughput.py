"""Slot statistics and normalized throughput (Section III).

Given per-node transmission probabilities the channel alternates between
idle slots (duration ``sigma``), successful transmissions (``Ts``) and
collisions (``Tc``).  This module computes:

* ``Ptr``  - probability at least one node transmits in a slot,
* ``Ps``   - probability a transmission slot is a success,
* ``Tslot``- expected slot duration,
* ``S``    - normalized throughput, the fraction of time carrying payload,

plus per-node success probabilities used by the utility layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.typealiases import FloatArray
from repro.errors import ParameterError
from repro.phy.timing import SlotTimes

__all__ = ["SlotStatistics", "slot_statistics", "normalized_throughput"]

ArrayLike = Union[Sequence[float], FloatArray]


@dataclass(frozen=True)
class SlotStatistics:
    """Channel-level statistics of one slot (Section III).

    Attributes
    ----------
    p_transmission:
        ``Ptr`` - probability at least one node transmits.
    p_success:
        ``Ps`` - probability exactly one node transmits, conditioned on at
        least one transmitting (0 when ``Ptr`` is 0).
    p_idle:
        ``1 - Ptr``.
    expected_slot_us:
        ``Tslot`` - expected duration of a slot in microseconds.
    per_node_success:
        Array of per-node probabilities that node ``i`` alone transmits in
        a random slot, ``tau_i * prod_{j != i}(1 - tau_j)``.
    """

    p_transmission: float
    p_success: float
    p_idle: float
    expected_slot_us: float
    per_node_success: FloatArray


def _as_tau_array(tau: ArrayLike) -> FloatArray:
    arr = np.asarray(tau, dtype=float)
    if arr.ndim != 1 or arr.shape[0] < 1:
        raise ParameterError("tau must be a non-empty 1-D sequence")
    if np.any(arr < 0) or np.any(arr > 1):
        raise ParameterError(f"tau values must lie in [0, 1], got {arr!r}")
    return arr


def slot_statistics(tau: ArrayLike, times: SlotTimes) -> SlotStatistics:
    """Compute the slot statistics for per-node transmission probabilities.

    Parameters
    ----------
    tau:
        Per-node transmission probabilities ``tau_1..tau_n``.
    times:
        Slot durations ``(Ts, Tc, sigma)`` for the access mode in use.

    Returns
    -------
    SlotStatistics
    """
    arr = _as_tau_array(tau)
    one_minus = 1.0 - arr
    p_idle = float(np.prod(one_minus))
    p_tr = 1.0 - p_idle

    per_node = np.empty_like(arr)
    for i in range(arr.shape[0]):
        per_node[i] = arr[i] * float(np.prod(np.delete(one_minus, i)))
    p_single = float(per_node.sum())
    # The ratio can exceed 1 by a few ulps (e.g. a single node, where
    # p_single == p_tr analytically); clamp to keep the contract.
    p_success = min(p_single / p_tr, 1.0) if p_tr > 0 else 0.0

    expected_slot = (
        p_idle * times.idle_us
        + p_single * times.success_us
        + (p_tr - p_single) * times.collision_us
    )
    return SlotStatistics(
        p_transmission=p_tr,
        p_success=p_success,
        p_idle=p_idle,
        expected_slot_us=expected_slot,
        per_node_success=per_node,
    )


def normalized_throughput(
    tau: ArrayLike, times: SlotTimes, payload_time_us: float
) -> float:
    """Normalized saturation throughput ``S`` (Section III).

    ``S = Ps Ptr E[P] / Tslot`` - the fraction of channel time spent
    carrying payload bits.

    Parameters
    ----------
    tau:
        Per-node transmission probabilities.
    times:
        Slot durations for the access mode in use.
    payload_time_us:
        ``E[P]``, the payload transmission time in microseconds.

    Returns
    -------
    float
        Throughput in ``[0, 1)``.
    """
    if payload_time_us <= 0:
        raise ParameterError(
            f"payload_time_us must be positive, got {payload_time_us!r}"
        )
    stats = slot_statistics(tau, times)
    if stats.expected_slot_us <= 0:
        return 0.0
    return (
        stats.p_success
        * stats.p_transmission
        * payload_time_us
        / stats.expected_slot_us
    )
