"""Per-node backoff Markov chain (paper Section III, Figure 1).

Each saturated node runs binary exponential backoff: after choosing a
uniform backoff counter in ``{0, ..., 2^j W - 1}`` at stage ``j`` it counts
down one slot at a time; a successful transmission resets the stage to 0, a
collision (probability ``p``, assumed independent per attempt) doubles the
window up to stage ``m``.  States are pairs ``(j, k)`` of backoff stage and
remaining counter.

The closed forms implemented here are equations (1)-(2) of the paper:

``q(j, 0) = p^j q(0, 0)`` for ``j < m`` and
``q(m, 0) = p^m / (1 - p) q(0, 0)``;

``q(0,0) = 2 (1 - 2p)(1 - p) / ((1 - 2p)(W + 1) + p W (1 - (2p)^m))``;

``tau = 2 / (1 + W + p W * sum_{j=0}^{m-1} (2p)^j)``.

The degenerate discount ``p = 1/2`` makes ``1 - 2p`` vanish; the closed
forms are continuous there and we evaluate the geometric sums directly, so
no special-casing is needed for ``tau``; ``q(0,0)`` uses the limit form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union, overload

import numpy as np

from repro.typealiases import FloatArray
from repro.errors import ParameterError

__all__ = [
    "BackoffChain",
    "stationary_distribution",
    "transmission_probability",
]


def _validate(window: float, collision_probability: float, max_stage: int) -> None:
    if window < 1:
        raise ParameterError(f"window must be >= 1, got {window!r}")
    if not 0 <= collision_probability < 1:
        raise ParameterError(
            "collision_probability must lie in [0, 1), got "
            f"{collision_probability!r}"
        )
    if max_stage < 0:
        raise ParameterError(f"max_stage must be >= 0, got {max_stage!r}")


def _geometric_sum(ratio: float, terms: int) -> float:
    """``sum_{j=0}^{terms-1} ratio^j`` evaluated stably (handles ratio=1)."""
    if terms <= 0:
        return 0.0
    if abs(ratio - 1.0) < 1e-12:
        return float(terms)
    return (1.0 - ratio**terms) / (1.0 - ratio)


def _geometric_sum_array(ratio: FloatArray, terms: int) -> FloatArray:
    """Elementwise :func:`_geometric_sum` with the same ``ratio = 1`` guard."""
    if terms <= 0:
        return np.zeros_like(ratio)
    near_one = np.abs(ratio - 1.0) < 1e-12
    safe = np.where(near_one, 2.0, ratio)
    return np.where(near_one, float(terms), (1.0 - safe**terms) / (1.0 - safe))


def _validate_arrays(
    window: FloatArray, collision_probability: FloatArray, max_stage: int
) -> None:
    if np.any(window < 1):
        raise ParameterError(f"window must be >= 1, got {window!r}")
    if np.any(collision_probability < 0) or np.any(collision_probability >= 1):
        raise ParameterError(
            "collision_probability must lie in [0, 1), got "
            f"{collision_probability!r}"
        )
    if max_stage < 0:
        raise ParameterError(f"max_stage must be >= 0, got {max_stage!r}")


@overload
def transmission_probability(
    window: float, collision_probability: float, max_stage: int
) -> float: ...


@overload
def transmission_probability(
    window: FloatArray,
    collision_probability: Union[float, FloatArray],
    max_stage: int,
) -> FloatArray: ...


def transmission_probability(
    window: Union[float, FloatArray],
    collision_probability: Union[float, FloatArray],
    max_stage: int,
) -> Union[float, FloatArray]:
    """``tau(W, p)``: probability a node transmits in a random slot.

    This is equation (2) of the paper, written through the geometric sum so
    it is well defined at ``p = 1/2``::

        tau = 2 / (1 + W + p W * sum_{j=0}^{m-1} (2p)^j)

    Accepts scalars or arrays; array arguments broadcast against each other
    and return an array (the batched solvers evaluate whole ``(B, n)``
    window/collision grids in one call).  The scalar path is unchanged and
    bit-compatible with earlier revisions.

    Parameters
    ----------
    window:
        Initial contention window ``W`` (stage-0 window size).  Real values
        are accepted so optimisers can relax the integrality of CW.
    collision_probability:
        Conditional collision probability ``p`` seen by this node.
    max_stage:
        Maximum backoff stage ``m``.
    """
    if np.ndim(window) == 0 and np.ndim(collision_probability) == 0:
        w_scalar = float(window)  # type: ignore[arg-type]
        p_scalar = float(collision_probability)  # type: ignore[arg-type]
        _validate(w_scalar, p_scalar, max_stage)
        series = _geometric_sum(2.0 * p_scalar, max_stage)
        return 2.0 / (1.0 + w_scalar + p_scalar * w_scalar * series)
    w = np.asarray(window, dtype=float)
    p = np.asarray(collision_probability, dtype=float)
    _validate_arrays(w, p, max_stage)
    series_arr = _geometric_sum_array(2.0 * p, max_stage)
    result: FloatArray = 2.0 / (1.0 + w + p * w * series_arr)
    return result


@dataclass(frozen=True)
class BackoffChain:
    """The backoff Markov chain of one node.

    Attributes
    ----------
    window:
        Stage-0 contention window ``W``.
    collision_probability:
        Conditional collision probability ``p``.
    max_stage:
        Maximum number of window doublings ``m``.
    """

    window: float
    collision_probability: float
    max_stage: int

    def __post_init__(self) -> None:
        _validate(self.window, self.collision_probability, self.max_stage)

    # ------------------------------------------------------------------
    def stage_window(self, stage: int) -> float:
        """Contention window ``2^j W`` at backoff stage ``j`` (capped at m)."""
        if stage < 0:
            raise ParameterError(f"stage must be >= 0, got {stage!r}")
        return float(2 ** min(stage, self.max_stage)) * self.window

    @property
    def q00(self) -> float:
        """Stationary probability of state ``(0, 0)``.

        Uses the paper's closed form away from ``p = 1/2`` and the
        continuous limit at ``p = 1/2``.
        """
        p = self.collision_probability
        m = self.max_stage
        # Normalisation: sum over stages of q(j,0) * (Wj + 1) / 2, with the
        # final stage absorbing the geometric tail.  This is the paper's
        # closed form
        #   q00 = 2(1-2p)(1-p) / ((1-2p)(W+1) + pW(1-(2p)^m))
        # written as a direct sum so it stays finite at p = 1/2.
        stage_mass = 0.0
        for j in range(m):
            stage_mass += p**j * (self.stage_window(j) + 1.0)
        tail = p**m / (1.0 - p)
        stage_mass += tail * (self.stage_window(m) + 1.0)
        return 2.0 / stage_mass

    def transmission_probability(self) -> float:
        """``tau``: probability of transmitting in a random slot."""
        return transmission_probability(
            self.window, self.collision_probability, self.max_stage
        )

    def stage_probabilities(self) -> FloatArray:
        """Probability ``q(j, 0)`` of attempting at each stage ``j``.

        Returns an array of length ``max_stage + 1``; its sum equals
        ``tau``.
        """
        p = self.collision_probability
        q00 = self.q00
        probs = np.empty(self.max_stage + 1, dtype=float)
        for j in range(self.max_stage):
            probs[j] = p**j * q00
        probs[self.max_stage] = p**self.max_stage / (1.0 - p) * q00
        return probs

    def mean_attempts_per_packet(self) -> float:
        """Expected number of transmission attempts per packet, 1/(1-p)."""
        return 1.0 / (1.0 - self.collision_probability)


def stationary_distribution(chain: BackoffChain) -> Dict[Tuple[int, int], float]:
    """Full stationary distribution ``q(j, k)`` of the backoff chain.

    The counter marginal within stage ``j`` decreases linearly with ``k``
    (equation (1) of the paper, after summing the uniform re-entries)::

        q(j, k) = q(j, 0) * (Wj - k) / Wj,   Wj = 2^min(j, m) W.

    Returns
    -------
    dict
        Mapping from ``(stage, counter)`` to stationary probability; the
        values sum to 1 (up to floating point error).

    Notes
    -----
    The state space has ``sum_j 2^j W`` states, so this is intended for
    inspection and testing with moderate ``W``; the analytical pipeline
    never materialises it.
    """
    window = chain.window
    if abs(window - round(window)) > 1e-9:
        raise ParameterError(
            "stationary_distribution requires an integer window, got "
            f"{window!r}"
        )
    stage_probs = chain.stage_probabilities()
    dist: Dict[Tuple[int, int], float] = {}
    for stage in range(chain.max_stage + 1):
        wj = int(chain.stage_window(stage))
        qj0 = stage_probs[stage]
        for counter in range(wj):
            dist[(stage, counter)] = qj0 * (wj - counter) / wj
    return dist
