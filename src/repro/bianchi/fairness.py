"""Fairness metrics over per-node allocations.

The paper's TFT "ensures the fairness among players": after convergence
everyone uses one window and earns one payoff.  This module provides the
standard quantitative lens - Jain's fairness index and per-node shares -
so experiments can measure how *unfair* a heterogeneous profile is and
how TFT convergence restores fairness.

Jain's index of an allocation ``x``::

    J(x) = (sum x)^2 / (n * sum x^2)

ranges from ``1/n`` (one node takes everything) to ``1`` (perfect
equality), and is scale-invariant.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.typealiases import FloatArray
from repro.errors import ParameterError
from repro.bianchi.throughput import slot_statistics
from repro.phy.timing import SlotTimes

__all__ = ["jain_index", "throughput_shares"]

ArrayLike = Union[Sequence[float], FloatArray]


def jain_index(allocation: ArrayLike) -> float:
    """Jain's fairness index of a non-negative allocation.

    Parameters
    ----------
    allocation:
        Per-node allocation (throughput shares, payoffs...); all entries
        must be non-negative with a positive sum.

    Returns
    -------
    float
        ``J`` in ``[1/n, 1]``.
    """
    x = np.asarray(allocation, dtype=float)
    if x.ndim != 1 or x.size < 1:
        raise ParameterError("allocation must be a non-empty 1-D sequence")
    if np.any(x < 0):
        raise ParameterError(f"allocation must be non-negative, got {x!r}")
    total = float(x.sum())
    if total <= 0:
        raise ParameterError("allocation must have a positive sum")
    # Normalise by the maximum first: the index is scale-invariant and
    # this keeps the squared sum from underflowing for denormal inputs.
    scaled = x / float(x.max())
    return float(scaled.sum()) ** 2 / (x.size * float((scaled**2).sum()))


def throughput_shares(tau: ArrayLike, times: SlotTimes) -> FloatArray:
    """Per-node shares of the successful airtime.

    Each node's share is its probability of owning a success slot,
    normalised over all nodes - the long-run fraction of delivered
    packets that are its.  Returns a vector summing to 1 (all-zero
    ``tau`` is rejected: there is no traffic to share).
    """
    stats = slot_statistics(tau, times)
    total = float(stats.per_node_success.sum())
    if total <= 0:
        raise ParameterError("no successful traffic to share")
    return stats.per_node_success / total
