"""Mean-field (type-distribution) solver for the heterogeneous fixed point.

:mod:`repro.bianchi.batched` solves the coupled system (2)-(3) as per-node
``(B, n)`` arrays - O(n) work per sweep per instance, which caps practical
populations around 10^3-10^4 nodes.  Real populations, however, have few
*distinct* contention-window configurations: a million nodes might split
into a handful of CW **types** (compliant, two or three selfish presets, a
malicious fringe).  Because the fixed point is symmetric within a type -
two nodes with the same window see the same coupling and therefore share
the same ``tau`` - the per-node system collapses exactly to a
type-distribution formulation:

``tau_k = tau(W_k, p_k)``                                (per type)
``p_k   = 1 - prod_j (1 - tau_j)^(n_j - delta_jk)``      (coupling),

where ``n_j`` counts the nodes of type ``j``.  The coupling step is
O(K) per instance *independent of the population size*: a million-node
population with K = 8 types costs exactly as much as an 8-node exact
solve.  This is not an approximation - for integer type counts the
type-distribution fixed point expands to a per-node fixed point of
:func:`~repro.bianchi.batched.solve_heterogeneous_batch` and agrees with
it to ``<= 1e-9`` in ``tau`` (pinned by ``tests/unit/test_meanfield.py``
and ``benchmarks/test_bench_meanfield.py``).

The iteration machinery mirrors :mod:`repro.bianchi.batched`: a batch
axis over ``B`` populations, Anderson(m=1)-accelerated damped sweeps with
per-instance convergence masks, and a vectorized damped-Newton fallback
on the K-dimensional residual (the Jacobian is ``(B, K, K)`` - tiny,
regardless of population).

Real-valued (fractional) counts are accepted so replicator/evolutionary
dynamics (:mod:`repro.game.dynamics`) can flow population *fractions*
through the same solver; the exactness anchor above applies to integer
counts, which is the down-sampling used in validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.typealiases import BoolArray, FloatArray, IntArray
from repro.contracts import check_probability, check_window, checks_enabled
from repro.errors import ConvergenceError, ParameterError
from repro.obs import enabled as _obs_enabled
from repro.obs.metrics import inc as _obs_inc
from repro.obs.metrics import observe_many as _obs_observe_many
from repro.bianchi.batched import P_MAX, _TAU_MAX, _TAU_MIN, _series_derivative
from repro.bianchi.markov import _geometric_sum_array, transmission_probability
from repro.phy.parameters import PhyParameters
from repro.phy.timing import SlotTimes

__all__ = [
    "MeanFieldSolution",
    "MeanFieldStatistics",
    "expand_types",
    "mean_field_statistics",
    "solve_mean_field",
    "solve_mean_field_batch",
    "type_collision_probabilities",
]

#: Cache-entering analysis roots for ``repro.lint --deep`` (REPRO101):
#: served ``mean_field`` results and replicator steps replay cached
#: digests produced by these calls, so the whole call tree must stay
#: free of I/O, clock, environment and entropy effects.
ANALYSIS_ROOTS = (
    "repro.bianchi.meanfield.solve_mean_field_batch",
    "repro.bianchi.meanfield.mean_field_statistics",
)

_DAMPING = 0.5
_DEFAULT_TOL = 1e-12
_DEFAULT_MAX_ITER = 100_000
_GAMMA_LIMIT = 2.0
_NEWTON_MAX_ITER = 60
_RESIDUAL_LIMIT = 1e-8


# ----------------------------------------------------------------------
# Coupling step
# ----------------------------------------------------------------------
def type_collision_probabilities(
    tau: FloatArray, counts: FloatArray
) -> FloatArray:
    """``p_k = 1 - prod_j (1 - tau_j)^(n_j - delta_jk)`` along the last axis.

    The leave-one-out product over the *population* - every node except
    one of type ``k`` - evaluated through ``log1p`` sums, O(K) per
    instance and numerically stable for tiny ``tau`` and huge counts::

        p_k = 1 - exp( sum_j n_j log1p(-tau_j) - log1p(-tau_k) )

    Parameters
    ----------
    tau:
        Per-type transmission probabilities, shape ``(..., K)``, all
        strictly below 1 (the solvers clamp their iterates).
    counts:
        Per-type node counts ``n_j > 0`` (real values accepted), same
        shape.

    Returns
    -------
    numpy.ndarray
        Per-type conditional collision probabilities, clamped to
        :data:`~repro.bianchi.batched.P_MAX`.
    """
    arr = np.asarray(tau, dtype=float)
    weights = np.asarray(counts, dtype=float)
    if arr.shape[-1] < 1:
        raise ParameterError("tau must have at least one type entry")
    logs = np.log1p(-arr)
    total = (weights * logs).sum(axis=-1, keepdims=True)
    p = 1.0 - np.exp(total - logs)
    # Sub-unit counts (replicator fractions) can push the leave-one-out
    # weight of a type's own term negative; a population of less than
    # one whole node cannot collide with itself, so floor at zero.
    return np.clip(p, 0.0, P_MAX)


# ----------------------------------------------------------------------
# Solution containers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MeanFieldSolution:
    """Solutions of ``B`` type-distribution fixed-point instances.

    Attributes
    ----------
    type_windows:
        Per-instance type windows, shape ``(B, K)``.
    type_counts:
        Per-instance node counts per type, shape ``(B, K)``.
    tau:
        Per-type transmission probabilities at the fixed points,
        shape ``(B, K)``.
    collision:
        Per-type conditional collision probabilities, shape ``(B, K)``.
    residual:
        Per-instance max-norm residual of ``tau - tau(W, p)``, shape
        ``(B,)``.
    iterations:
        Accelerated fixed-point iterations each instance consumed,
        shape ``(B,)``.
    newton:
        Instances finished by the Newton fallback, shape ``(B,)``.
    """

    type_windows: FloatArray
    type_counts: FloatArray
    tau: FloatArray
    collision: FloatArray
    residual: FloatArray
    iterations: IntArray
    newton: BoolArray

    @property
    def n_instances(self) -> int:
        """Batch size ``B``."""
        return int(self.tau.shape[0])

    @property
    def n_types(self) -> int:
        """Distinct CW types per instance ``K``."""
        return int(self.tau.shape[1])

    @property
    def population(self) -> FloatArray:
        """Total population per instance, ``sum_k n_k``, shape ``(B,)``."""
        return self.type_counts.sum(axis=-1)


@dataclass(frozen=True)
class MeanFieldStatistics:
    """Channel statistics and per-type utilities of one solved instance.

    All O(K): the idle probability is ``exp(sum_k n_k log1p(-tau_k))``,
    the aggregate success probability ``sum_k n_k tau_k (1 - p_k)``, and
    the per-type utility the paper's rate
    ``u_k = tau_k ((1 - p_k) g - e) / E[slot]``.

    Attributes
    ----------
    p_idle:
        Probability of an idle slot.
    p_transmission:
        ``Ptr`` - probability at least one node transmits.
    p_success_slot:
        Probability a random slot is a success (exactly one attempt).
    expected_slot_us:
        Expected slot duration in microseconds.
    throughput:
        Normalized saturation throughput ``S`` in ``[0, 1)``.
    type_utilities:
        Per-type per-microsecond utility rates, shape ``(K,)``.
    """

    p_idle: float
    p_transmission: float
    p_success_slot: float
    expected_slot_us: float
    throughput: float
    type_utilities: FloatArray


# ----------------------------------------------------------------------
# Validation and expansion helpers
# ----------------------------------------------------------------------
def _validate_types(
    type_windows: object, type_counts: object
) -> Tuple[FloatArray, FloatArray]:
    w = np.asarray(type_windows, dtype=float)
    n = np.asarray(type_counts, dtype=float)
    if w.ndim == 1:
        w = w[None, :]
    if n.ndim == 1:
        n = n[None, :]
    if w.ndim != 2 or w.shape[0] < 1 or w.shape[1] < 1:
        raise ParameterError(
            "type windows must be a non-empty (B, K) array, got shape "
            f"{w.shape!r}"
        )
    if n.shape != w.shape:
        raise ParameterError(
            f"type counts shape {n.shape!r} must match type windows "
            f"shape {w.shape!r}"
        )
    check_window(w, "type windows")
    if np.any(~np.isfinite(n)) or np.any(n <= 0.0):
        raise ParameterError(
            f"type counts must be finite and positive, got {n!r}"
        )
    return w, n


def expand_types(
    type_windows: Union[Sequence[float], FloatArray],
    type_counts: Union[Sequence[int], IntArray],
) -> FloatArray:
    """Expand one ``(types, counts)`` population to a per-node vector.

    The bridge to the exact per-node solvers: the returned ``(n,)``
    window vector feeds :func:`~repro.bianchi.batched.solve_heterogeneous_batch`
    directly, which is how the mean-field solution is validated on
    down-sampled instances.  Counts must be integers here (a per-node
    vector has no fractional nodes).
    """
    w = np.asarray(type_windows, dtype=float)
    n = np.asarray(type_counts)
    if w.ndim != 1 or n.shape != w.shape:
        raise ParameterError(
            "expand_types takes matching 1-D type windows and counts"
        )
    counts_float = np.asarray(n, dtype=float)
    if np.any(np.abs(counts_float - np.round(counts_float)) > 1e-9):
        raise ParameterError(
            f"expand_types requires integer counts, got {n!r}"
        )
    ints = np.round(counts_float).astype(np.int64)
    if np.any(ints < 1):
        raise ParameterError(f"type counts must be >= 1, got {n!r}")
    return np.repeat(w, ints)


# ----------------------------------------------------------------------
# Solvers
# ----------------------------------------------------------------------
def _tau_unchecked(
    w: FloatArray, p: FloatArray, max_stage: int
) -> FloatArray:
    """Equation (2) without per-call validation.

    The inner loop evaluates ``tau(W, p)`` on K-vectors thousands of
    times per second; revalidating ``W`` (checked once at the public
    boundary) and ``p`` (clamped to ``[0, P_MAX]`` by construction)
    every sweep would dominate the O(K) arithmetic.  Semantically
    identical to :func:`~repro.bianchi.markov.transmission_probability`
    on valid inputs.
    """
    series = _geometric_sum_array(2.0 * p, max_stage)
    result: FloatArray = 2.0 / (1.0 + w + p * w * series)
    return result


def _tau_step(
    w: FloatArray, counts: FloatArray, tau: FloatArray, max_stage: int
) -> FloatArray:
    """One coupling sweep ``tau -> tau(W, p(tau))`` on ``(B, K)`` arrays."""
    p = type_collision_probabilities(tau, counts)
    return _tau_unchecked(w, p, max_stage)


def solve_mean_field(
    type_windows: Union[Sequence[float], FloatArray],
    type_counts: Union[Sequence[float], FloatArray],
    max_stage: int,
    *,
    tol: float = _DEFAULT_TOL,
    max_iterations: int = _DEFAULT_MAX_ITER,
) -> MeanFieldSolution:
    """Solve one population's type-distribution fixed point.

    Convenience wrapper promoting ``(K,)`` inputs to a batch of one; see
    :func:`solve_mean_field_batch` for the batched contract.
    """
    return solve_mean_field_batch(
        type_windows,
        type_counts,
        max_stage,
        tol=tol,
        max_iterations=max_iterations,
    )


def solve_mean_field_batch(
    type_windows: Union[Sequence[Sequence[float]], FloatArray],
    type_counts: Union[Sequence[Sequence[float]], FloatArray],
    max_stage: int,
    *,
    tol: float = _DEFAULT_TOL,
    max_iterations: int = _DEFAULT_MAX_ITER,
    initial_tau: Optional[FloatArray] = None,
) -> MeanFieldSolution:
    """Solve ``B`` type-distribution ``(tau, p)`` systems in one call.

    The cost of one sweep is O(B x K) whatever the population: a
    million-node instance with 8 types iterates 8-vectors.  The
    iteration is the Anderson(m=1)-accelerated damped scheme of
    :func:`~repro.bianchi.batched.solve_heterogeneous_batch` with
    per-instance convergence masks; instances that exhaust the budget go
    through a vectorized damped Newton on the ``(B, K, K)`` Jacobian.

    Parameters
    ----------
    type_windows:
        Per-type windows, shape ``(B, K)`` (a single ``(K,)`` vector is
        promoted to ``B = 1``).  Types need not be distinct - duplicate
        windows are solved as separate types with identical results.
    type_counts:
        Nodes per type, same shape, each positive.  Real values are
        accepted (replicator dynamics pass fractional populations);
        integer counts make the solution exactly the per-node fixed
        point of the expanded population.
    max_stage:
        Maximum backoff stage ``m`` (shared by all types and instances).
    tol, max_iterations:
        Convergence tolerance on the max-norm tau update per instance
        and the fixed-point budget before the Newton fallback.
    initial_tau:
        Optional warm start, shape ``(K,)`` or ``(B, K)``.

    Returns
    -------
    MeanFieldSolution

    Raises
    ------
    ConvergenceError
        If some instance's residual exceeds ``1e-8`` even after the
        Newton fallback.
    """
    w, counts = _validate_types(type_windows, type_counts)
    n_batch, n_types = w.shape

    single = counts.sum(axis=-1) <= 1.0 + 1e-12
    if bool(np.all(single)):
        # A lone node never collides: tau = tau(W, 0) exactly.
        tau = transmission_probability(w, np.zeros_like(w), max_stage)
        if _obs_enabled():
            _obs_inc("bianchi.solves", n_batch, kind="mean-field")
            _obs_inc("bianchi.method", n_batch, method="closed-form")
        return MeanFieldSolution(
            type_windows=w,
            type_counts=counts,
            tau=tau,
            collision=np.zeros_like(w),
            residual=np.zeros(n_batch),
            iterations=np.zeros(n_batch, dtype=np.int64),
            newton=np.zeros(n_batch, dtype=bool),
        )

    if initial_tau is not None:
        tau = np.array(
            np.broadcast_to(np.asarray(initial_tau, dtype=float), w.shape)
        )
        tau = np.clip(tau, _TAU_MIN, _TAU_MAX)
    else:
        tau = np.full_like(w, 0.1)

    iterations = np.zeros(n_batch, dtype=np.int64)
    active = np.arange(n_batch)
    x = tau.copy()
    x_prev: Optional[FloatArray] = None
    f_prev: Optional[FloatArray] = None

    for sweep in range(1, max_iterations + 1):
        w_act = w[active]
        n_act = counts[active]
        g = _tau_step(w_act, n_act, x, max_stage)
        f = g - x
        if f_prev is None:
            x_next = x + _DAMPING * f
        else:
            df = f - f_prev
            num = (f * df).sum(axis=-1)
            den = (df * df).sum(axis=-1)
            # Exact-zero guard against division, not a tolerance check.
            safe_den = np.where(den == 0.0, 1.0, den)  # repro: noqa=REPRO003
            gamma = num / safe_den
            usable = (den != 0.0) & np.isfinite(gamma) & (  # repro: noqa=REPRO003
                np.abs(gamma) <= _GAMMA_LIMIT
            )
            gamma = np.where(usable, gamma, 0.0)[:, None]
            x_next = x + _DAMPING * f - gamma * (x - x_prev + _DAMPING * df)
        x_next = np.clip(x_next, _TAU_MIN, _TAU_MAX)
        delta = np.max(np.abs(x_next - x), axis=-1)
        iterations[active] = sweep
        converged = delta < tol
        tau[active] = x_next
        if np.all(converged):
            active = active[:0]
            break
        keep = ~converged
        active = active[keep]
        x_prev = x[keep]
        f_prev = f[keep]
        x = x_next[keep]

    newton = np.zeros(n_batch, dtype=bool)
    if active.size:
        tau[active] = _newton_fallback(
            w[active], counts[active], tau[active], max_stage, tol
        )
        newton[active] = True

    p = type_collision_probabilities(tau, counts)
    residual = np.max(
        np.abs(tau - _tau_unchecked(w, p, max_stage)), axis=-1
    )
    worst = float(residual.max())
    if worst > _RESIDUAL_LIMIT:
        index = int(residual.argmax())
        raise ConvergenceError(
            f"mean-field fixed point residual {worst:.3e} exceeds "
            f"tolerance for types={w[index]!r} counts={counts[index]!r} "
            f"(batch instance {index})"
        )
    if checks_enabled():
        check_probability(tau, "tau")
        check_probability(p, "collision")
    if _obs_enabled():
        newton_count = int(newton.sum())
        _obs_inc("bianchi.solves", n_batch, kind="mean-field")
        if n_batch > newton_count:
            _obs_inc(
                "bianchi.method", n_batch - newton_count, method="anderson"
            )
        if newton_count:
            _obs_inc("bianchi.method", newton_count, method="newton")
            _obs_inc("bianchi.fallbacks", newton_count, method="newton")
        _obs_observe_many(
            "bianchi.iterations", iterations.tolist(), kind="mean-field"
        )
    return MeanFieldSolution(
        type_windows=w,
        type_counts=counts,
        tau=tau,
        collision=p,
        residual=residual,
        iterations=iterations,
        newton=newton,
    )


def _newton_fallback(
    w: FloatArray,
    counts: FloatArray,
    tau0: FloatArray,
    max_stage: int,
    tol: float,
) -> FloatArray:
    """Vectorized damped Newton on ``F(x) = x - tau(W, p(x))`` over types.

    The Jacobian is ``J = I - (dtau/dp) (dp/dx)`` with
    ``dp_k/dx_j = (1 - p_k)(n_j - delta_kj) / (1 - x_j)`` - a ``(B, K, K)``
    stack solved with batched ``numpy.linalg.solve``, so the fallback
    stays population-independent like the iteration itself.
    """
    k = w.shape[-1]
    x = np.clip(tau0, 1e-6, 1.0 - 1e-6)
    target = max(tol, 1e-13)
    eye = np.eye(k)

    def residual_vec(values: FloatArray) -> FloatArray:
        return values - transmission_probability(
            w, type_collision_probabilities(values, counts), max_stage
        )

    f = residual_vec(x)
    for _ in range(_NEWTON_MAX_ITER):
        norms = np.max(np.abs(f), axis=-1)
        if float(norms.max()) < target:
            break
        p = type_collision_probabilities(x, counts)
        series = np.zeros_like(p)
        power = np.ones_like(p)
        for _j in range(max_stage):
            power = power * (2.0 * p)
            series += power
        series = 1.0 + series - power
        denom = 1.0 + w + p * w * series
        dtau_dp = -2.0 * w * _series_derivative(p, max_stage) / (denom * denom)
        # dp_k/dx_j = (1 - p_k)(n_j - delta_kj) / (1 - x_j).
        weights = counts[:, None, :] - eye[None, :, :]
        outer = (
            (dtau_dp * (1.0 - p))[:, :, None]
            * weights
            / (1.0 - x)[:, None, :]
        )
        jacobian = eye[None, :, :] - outer
        try:
            step = np.linalg.solve(jacobian, f[..., None])[..., 0]
        except np.linalg.LinAlgError as error:  # pragma: no cover - singular J
            raise ConvergenceError(
                f"mean-field Newton fallback hit a singular Jacobian: {error}"
            ) from error
        scale = np.ones((x.shape[0], 1))
        for _halving in range(8):
            candidate = np.clip(x - scale * step, _TAU_MIN, _TAU_MAX)
            f_candidate = residual_vec(candidate)
            improved = np.max(np.abs(f_candidate), axis=-1) <= norms
            if np.all(improved):
                break
            scale = np.where(improved[:, None], scale, scale * 0.5)
        x = np.clip(x - scale * step, _TAU_MIN, _TAU_MAX)
        f = residual_vec(x)
    return x


# ----------------------------------------------------------------------
# Channel statistics and utilities, O(K)
# ----------------------------------------------------------------------
def mean_field_statistics(
    type_windows: Union[Sequence[float], FloatArray],
    type_counts: Union[Sequence[float], FloatArray],
    max_stage: int,
    params: PhyParameters,
    times: SlotTimes,
    *,
    ignore_cost: bool = False,
) -> MeanFieldStatistics:
    """Channel statistics and per-type utilities of one population.

    Solves the mean-field fixed point, then evaluates the Section III
    slot statistics and the per-type utility rate
    ``u_k = tau_k ((1 - p_k) g - e) / E[slot]`` - everything O(K),
    matching :func:`repro.game.utility.stage_outcome` on expanded
    integer-count populations to floating-point noise.

    Parameters
    ----------
    type_windows, type_counts, max_stage:
        The population, as in :func:`solve_mean_field`.
    params:
        Model constants (supplies ``g``, ``e`` and payload time).
    times:
        Slot durations for the access mode in play.
    ignore_cost:
        Drop the energy term (the paper's ``g >> e`` approximation).
    """
    solution = solve_mean_field(type_windows, type_counts, max_stage)
    tau = solution.tau[0]
    p = solution.collision[0]
    counts = solution.type_counts[0]

    log_idle = float((counts * np.log1p(-tau)).sum())
    p_idle = float(np.exp(log_idle))
    p_tr = 1.0 - p_idle
    # Per-type single-success probability: tau_k * prod_{others}(1-tau) =
    # tau_k (1 - p_k); aggregate over the population with the counts.
    per_type_success = tau * (1.0 - p)
    p_single = float((counts * per_type_success).sum())
    expected_slot = (
        p_idle * times.idle_us
        + p_single * times.success_us
        + (p_tr - p_single) * times.collision_us
    )
    if expected_slot <= 0:
        raise ParameterError("expected slot duration must be positive")
    cost = 0.0 if ignore_cost else params.cost
    utilities = tau * ((1.0 - p) * params.gain - cost) / expected_slot
    throughput = p_single * params.payload_time_us / expected_slot
    if checks_enabled():
        check_probability(throughput, "throughput", tol=1e-6)
    return MeanFieldStatistics(
        p_idle=p_idle,
        p_transmission=p_tr,
        p_success_slot=p_single,
        expected_slot_us=expected_slot,
        throughput=throughput,
        type_utilities=utilities,
    )
