"""Expected medium-access delay under saturated DCF.

Section VIII of the paper notes that its utility is generic and ignores
delay, so the efficient NE window "may seem too long in some cases", and
that a more desirable NE follows from a richer utility.  This module
supplies the missing ingredient: the expected per-packet access delay of
the backoff chain, exposed both in virtual slots and in microseconds.

Derivation (standard for Bianchi-type chains).  Let ``p`` be the
conditional collision probability and ``W_j = 2^min(j, m) W`` the stage-j
window.  A packet that needs ``k + 1`` attempts (k collisions, then a
success) pays the backoff countdowns of stages ``0..k`` plus ``k``
collision slots and one success slot.  With mean stage-j countdown
``(W_j - 1)/2`` and geometric attempt counts::

    E[slots] = sum_{k>=0} p^k (1-p) [ sum_{j=0}^{k} (W_bar_j - 1)/2 ]
             = sum_{j>=0} p^j (W_bar_j - 1)/2

where ``W_bar_j`` caps at stage ``m``.  Each countdown slot lasts the
*average* slot duration seen by a waiting node (idle/busy mix of the
other ``n - 1`` nodes), each collision costs ``Tc`` and the final
success ``Ts``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.bianchi.fixedpoint import solve_symmetric
from repro.phy.parameters import PhyParameters
from repro.phy.timing import SlotTimes

__all__ = [
    "AccessDelay",
    "access_delay_jitter",
    "expected_access_delay",
    "mean_backoff_slots",
]


def mean_backoff_slots(window: float, collision_probability: float, max_stage: int) -> float:
    """Expected countdown slots per packet, ``sum_j p^j (W_j - 1)/2``.

    Parameters
    ----------
    window:
        Stage-0 contention window ``W``.
    collision_probability:
        Conditional collision probability ``p`` in ``[0, 1)``.
    max_stage:
        Maximum backoff stage ``m``.

    Returns
    -------
    float
        Expected number of backoff slots counted down per packet.
    """
    if window < 1:
        raise ParameterError(f"window must be >= 1, got {window!r}")
    if not 0 <= collision_probability < 1:
        raise ParameterError(
            f"collision_probability must lie in [0, 1), got "
            f"{collision_probability!r}"
        )
    if max_stage < 0:
        raise ParameterError(f"max_stage must be >= 0, got {max_stage!r}")
    p = collision_probability
    total = 0.0
    # Stages below the cap: finite sum.
    for j in range(max_stage):
        total += p**j * (window * 2**j - 1.0) / 2.0
    # Capped tail: geometric with constant window.
    w_cap = window * 2**max_stage
    total += p**max_stage / (1.0 - p) * (w_cap - 1.0) / 2.0
    return total


@dataclass(frozen=True)
class AccessDelay:
    """Expected access delay of one node at a symmetric profile.

    Attributes
    ----------
    backoff_slots:
        Expected countdown slots per packet.
    mean_attempts:
        Expected transmission attempts per packet, ``1/(1 - p)``.
    countdown_slot_us:
        Average duration of one countdown slot (the idle/busy mix the
        waiting node observes from the other ``n - 1`` stations).
    delay_us:
        Total expected access delay per packet, in microseconds
        (countdowns + collisions + the final successful transmission).
    """

    backoff_slots: float
    mean_attempts: float
    countdown_slot_us: float
    delay_us: float


def expected_access_delay(
    window: int,
    n_nodes: int,
    params: PhyParameters,
    times: SlotTimes,
) -> AccessDelay:
    """Expected per-packet access delay at a symmetric profile.

    Solves the symmetric fixed point for ``(tau, p)``, prices one
    countdown slot by the other nodes' idle/success/collision mix, and
    assembles the delay decomposition documented in the module docstring.

    Parameters
    ----------
    window:
        Common contention window.
    n_nodes:
        Network size ``n >= 1``.
    params:
        PHY/MAC constants (supplies ``m``).
    times:
        Slot durations for the access mode.

    Returns
    -------
    AccessDelay
    """
    if n_nodes < 1:
        raise ParameterError(f"n_nodes must be >= 1, got {n_nodes!r}")
    solution = solve_symmetric(window, n_nodes, params.max_backoff_stage)
    tau, p = solution.tau, solution.collision

    slots = mean_backoff_slots(window, p, params.max_backoff_stage)
    attempts = 1.0 / (1.0 - p) if p < 1 else float("inf")

    # Average duration of a countdown slot: the other n-1 nodes are
    # idle / exactly-one-transmits / collide.
    others = n_nodes - 1
    one_minus = 1.0 - tau
    p_idle = one_minus**others
    p_single = others * tau * one_minus ** (others - 1) if others >= 1 else 0.0
    p_coll = 1.0 - p_idle - p_single
    countdown_us = (
        p_idle * times.idle_us
        + p_single * times.success_us
        + p_coll * times.collision_us
    )

    delay_us = (
        slots * countdown_us
        + (attempts - 1.0) * times.collision_us
        + times.success_us
    )
    return AccessDelay(
        backoff_slots=slots,
        mean_attempts=attempts,
        countdown_slot_us=countdown_us,
        delay_us=delay_us,
    )


def access_delay_jitter(
    window: int,
    n_nodes: int,
    params: PhyParameters,
    times: SlotTimes,
) -> float:
    """Standard deviation of the access delay at a symmetric profile.

    While the *mean* access delay is co-optimised with throughput (its
    minimum sits on the same plateau as ``W_c*`` - see the delay-aware
    tests), the delay *spread* behaves differently: collisions inflate
    it below the plateau, and far above the plateau the uniform stage-j
    countdown (variance ``(W_j^2 - 1)/12``) dominates and jitter grows
    linearly in ``W``.  Its minimum sits slightly above ``W_c*``.  This
    quantifies the paper's Section VIII remark about delay: within the
    saturated model the NE window is *not* "too long" - the penalty
    regime only starts well past the NE family.

    The returned figure prices the dominant variance terms: the uniform
    countdowns of each visited stage (weighted by the visit
    probabilities ``p^j``) plus the geometric spread of the retry count,
    each converted to microseconds with the mean countdown-slot price.

    Returns
    -------
    float
        Approximate standard deviation of the per-packet access delay,
        in microseconds.
    """
    if n_nodes < 1:
        raise ParameterError(f"n_nodes must be >= 1, got {n_nodes!r}")
    solution = solve_symmetric(window, n_nodes, params.max_backoff_stage)
    p = solution.collision
    m = params.max_backoff_stage

    countdown_us = expected_access_delay(
        window, n_nodes, params, times
    ).countdown_slot_us

    # Variance of the summed countdowns: visited stages contribute their
    # uniform variances, weighted by the probability of reaching them.
    slot_variance = 0.0
    for j in range(m):
        w_j = window * 2**j
        slot_variance += p**j * (w_j**2 - 1.0) / 12.0
    w_cap = window * 2**m
    slot_variance += p**m / (1.0 - p) * (w_cap**2 - 1.0) / 12.0

    # Retry-count spread: attempts - 1 is geometric(p) with variance
    # p/(1-p)^2, each extra attempt costing one collision slot.
    retry_variance = p / (1.0 - p) ** 2 * times.collision_us**2

    return float(
        (slot_variance * countdown_us**2 + retry_variance) ** 0.5
    )
