"""Zero-dependency observability layer: tracing, metrics, run profiles.

The package gives every layer of the reproduction a common, always-safe
instrumentation surface:

* **Tracing** - :func:`~repro.obs.span.span` context managers emit
  ``span_start``/``span_end`` events with monotonic timings and
  parent/child nesting (well-formed even when the body raises).
* **Metrics** - typed counters, gauges and histograms
  (:mod:`repro.obs.metrics`): solver iterations and fallback counts from
  :mod:`repro.bianchi`, slots-per-second and collision counts from
  :mod:`repro.sim`, store cache hits/misses from the campaign engine,
  tasks-in-flight from the parallel runner.
* **Run profiles** - :func:`~repro.obs.profile.build_profile` aggregates
  a recorded event stream into a JSON artifact with a content digest
  that *excludes* timing- and concurrency-volatile data, so a seeded run
  profiles identically under ``--jobs 1`` and ``--jobs 4``.

Everything defaults to the :class:`~repro.obs.recorder.NullRecorder`:
with no recorder installed every instrumentation call is a single
attribute check, measured at well under 2% of the BENCH_kernel workload
(``benchmarks/test_bench_kernel.py`` asserts the bound).  Install a
recorder for one block with::

    from repro import obs

    recorder = obs.MemoryRecorder()
    with obs.use_recorder(recorder):
        ...  # spans and metrics land in recorder.events
    profile = obs.build_profile(recorder.events)

The package is intentionally dependency-free (stdlib only) so the hot
numerical paths can import it unconditionally.  See
``docs/observability.md`` for the event schema and the CLI workflow
(``repro-experiments obs summary|diff|export``).
"""

from __future__ import annotations

from repro.obs.jsonl import (
    event_to_line,
    events_to_jsonl,
    jsonl_to_events,
    line_to_event,
)
from repro.obs.metrics import gauge_set, inc, observe, observe_many
from repro.obs.recorder import (
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    Recorder,
    current_span_id,
    enabled,
    get_recorder,
    use_recorder,
)
from repro.obs.profile import (
    PROFILE_SCHEMA,
    ProfileDiff,
    build_profile,
    diff_profiles,
    profile_digest,
    summarize_profile,
)
from repro.obs.span import span, validate_span_events

__all__ = [
    "JsonlRecorder",
    "MemoryRecorder",
    "NullRecorder",
    "PROFILE_SCHEMA",
    "ProfileDiff",
    "Recorder",
    "build_profile",
    "current_span_id",
    "diff_profiles",
    "enabled",
    "event_to_line",
    "events_to_jsonl",
    "gauge_set",
    "get_recorder",
    "inc",
    "jsonl_to_events",
    "line_to_event",
    "observe",
    "observe_many",
    "profile_digest",
    "span",
    "summarize_profile",
    "use_recorder",
    "validate_span_events",
]
