"""Recorder backends and the ambient-recorder context.

A *recorder* receives instrumentation events (plain JSON-typed dicts;
see ``docs/observability.md`` for the schema).  The ambient recorder is
held in a :class:`contextvars.ContextVar`, so nested ``use_recorder``
blocks restore their predecessor on exit and threads/async tasks are
isolated automatically.

The default is the shared :data:`NULL_RECORDER`: ``enabled`` is False
and every instrumentation helper returns after one attribute check,
which is what keeps the no-op overhead of the instrumented hot paths
below the 2% bound asserted in ``benchmarks/test_bench_kernel.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import IO, Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.obs.jsonl import event_to_line

__all__ = [
    "JsonlRecorder",
    "MemoryRecorder",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "current_span_id",
    "enabled",
    "get_recorder",
    "use_recorder",
]

Event = Dict[str, Any]


class Recorder:
    """Base recorder: the structural contract of every backend.

    Attributes
    ----------
    enabled:
        Class-level fast flag.  Instrumentation helpers check it before
        building any event payload, so a disabled recorder costs one
        attribute lookup per call site.
    """

    enabled: bool = False

    def record(self, event: Event) -> None:
        """Receive one event (no-op in the base class)."""

    def next_span_id(self) -> int:
        """Allocate a recorder-local span id (0 when disabled)."""
        return 0


class NullRecorder(Recorder):
    """The default do-nothing recorder."""


#: Shared singleton installed when no recorder is active.
NULL_RECORDER = NullRecorder()


class MemoryRecorder(Recorder):
    """Collects events in memory (the backend behind run profiles)."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[Event] = []
        self._next_id = 0

    def record(self, event: Event) -> None:
        self.events.append(event)

    def next_span_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def ingest(
        self,
        events: Sequence[Event],
        *,
        parent_id: Optional[int] = None,
    ) -> None:
        """Merge a batch of events recorded elsewhere (e.g. a worker).

        Span ids are remapped past this recorder's counter so batches
        from several workers never collide; root spans of the batch
        (``parent_id`` is None) are re-parented under ``parent_id`` so
        the merged trace keeps one well-formed tree.
        """
        offset = self._next_id
        highest = offset
        for event in events:
            event = dict(event)
            span_id = event.get("span_id")
            if isinstance(span_id, int):
                event["span_id"] = span_id + offset
                highest = max(highest, span_id + offset)
            if "parent_id" in event:
                parent = event["parent_id"]
                if isinstance(parent, int):
                    event["parent_id"] = parent + offset
                else:
                    event["parent_id"] = parent_id
            self.events.append(event)
        self._next_id = highest


class JsonlRecorder(Recorder):
    """Streams events as JSON Lines to an open text handle.

    One event per line, keys sorted (:func:`repro.obs.jsonl.event_to_line`),
    so the stream is greppable and tail-able while a run is in flight.
    The caller owns the handle's lifetime; ``flush`` is called per event
    only when ``autoflush`` is set.
    """

    enabled = True

    def __init__(self, handle: IO[str], *, autoflush: bool = False) -> None:
        self._handle = handle
        self._autoflush = autoflush
        self._next_id = 0

    def record(self, event: Event) -> None:
        self._handle.write(event_to_line(event) + "\n")
        if self._autoflush:
            self._handle.flush()

    def next_span_id(self) -> int:
        self._next_id += 1
        return self._next_id


_recorder_var: ContextVar[Recorder] = ContextVar(
    "repro_obs_recorder", default=NULL_RECORDER
)
_span_var: ContextVar[Optional[int]] = ContextVar(
    "repro_obs_span", default=None
)


def get_recorder() -> Recorder:
    """The ambient recorder (the shared null recorder by default)."""
    return _recorder_var.get()


def enabled() -> bool:
    """Whether the ambient recorder records anything."""
    return _recorder_var.get().enabled


def current_span_id() -> Optional[int]:
    """Id of the innermost open span, or None outside any span."""
    return _span_var.get()


@contextmanager
def use_recorder(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` as the ambient recorder for one block.

    The previous recorder (and the open-span pointer) is restored on
    exit even when the body raises, so instrumentation state can never
    leak across test cases or worker tasks.
    """
    recorder_token = _recorder_var.set(recorder)
    span_token = _span_var.set(None)
    try:
        yield recorder
    finally:
        _span_var.reset(span_token)
        _recorder_var.reset(recorder_token)


def _set_current_span(span_id: Optional[int]) -> "Token":
    """Internal: push the open-span pointer (used by ``obs.span``)."""
    return _span_var.set(span_id)


def _reset_current_span(token: "Token") -> None:
    """Internal: pop the open-span pointer (used by ``obs.span``)."""
    _span_var.reset(token)


# Typing alias for the contextvars token passed between the two helpers.
Token = Any
