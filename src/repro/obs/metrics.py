"""Typed metric instruments: counters, gauges, histograms.

Each helper emits one event to the ambient recorder (or returns after a
single flag check when the null recorder is installed):

* :func:`inc` - **counter**: monotonically accumulating totals (solver
  fallbacks, simulated slots, cache hits).  Deterministic for a seeded
  run, so counters participate in the profile digest.
* :func:`gauge_set` - **gauge**: point-in-time readings (slots per
  second, tasks in flight).  Gauges depend on wall clock and worker
  count, so they are *excluded* from the profile digest.
* :func:`observe`/:func:`observe_many` - **histogram**: distributions of
  per-item values (fixed-point iteration counts).  Aggregated into
  deterministic power-of-two buckets, so histograms participate in the
  digest.

Label values become part of the metric identity (``name|k=v`` keys in
the profile), so instrumented code must never put timing- or
concurrency-dependent values in a label - that is what gauges are for.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, Optional, Union

from repro.obs.recorder import get_recorder
from repro.obs.span import jsonable

__all__ = [
    "RateProbe",
    "gauge_set",
    "inc",
    "observe",
    "observe_many",
    "rate_gauge",
]

Number = Union[int, float]


def _labels(labels: Dict[str, Any]) -> Dict[str, Any]:
    return {key: jsonable(val) for key, val in labels.items()}


def _number(value: Any) -> Number:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return value
    item = getattr(value, "item", None)
    if callable(item):
        return _number(item())
    return float(value)


def inc(name: str, value: Number = 1, **labels: Any) -> None:
    """Add ``value`` to the counter ``name`` (with optional labels)."""
    recorder = get_recorder()
    if not recorder.enabled:
        return
    recorder.record(
        {
            "type": "counter",
            "name": name,
            "labels": _labels(labels),
            "value": _number(value),
        }
    )


def gauge_set(name: str, value: Number, **labels: Any) -> None:
    """Set the gauge ``name`` to a point-in-time reading."""
    recorder = get_recorder()
    if not recorder.enabled:
        return
    recorder.record(
        {
            "type": "gauge",
            "name": name,
            "labels": _labels(labels),
            "value": _number(value),
        }
    )


def observe(name: str, value: Number, **labels: Any) -> None:
    """Record one observation into the histogram ``name``."""
    recorder = get_recorder()
    if not recorder.enabled:
        return
    recorder.record(
        {
            "type": "histogram",
            "name": name,
            "labels": _labels(labels),
            "value": _number(value),
        }
    )


def observe_many(
    name: str, values: Iterable[Any], **labels: Any
) -> None:
    """Record a batch of observations into the histogram ``name``.

    One event per value keeps the schema uniform; callers on hot paths
    should gate on :func:`repro.obs.enabled` before materialising the
    value list (every instrumented solver already does).
    """
    recorder = get_recorder()
    if not recorder.enabled:
        return
    rendered = _labels(labels)
    for value in values:
        recorder.record(
            {
                "type": "histogram",
                "name": name,
                "labels": rendered,
                "value": _number(value),
            }
        )


class RateProbe:
    """Count holder handed out by :func:`rate_gauge`.

    The instrumented block assigns the number of items it processed to
    ``count``; leaving it ``None`` (e.g. on an error path) records
    nothing.
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count: Optional[Number] = None


@contextmanager
def rate_gauge(name: str, **labels: Any) -> Iterator[RateProbe]:
    """Time the ``with`` block and gauge ``count / elapsed_seconds``.

    This is the sanctioned home for throughput instrumentation on
    compute paths: the wall-clock reads live *here*, inside the
    observability boundary, so the instrumented function itself stays
    certifiably pure under the whole-program purity rule (REPRO101) -
    the timing feeds only this gauge, never the returned results.
    """
    probe = RateProbe()
    started = time.perf_counter()
    try:
        yield probe
    finally:
        elapsed = time.perf_counter() - started
        if probe.count is not None and elapsed > 0:
            gauge_set(name, _number(probe.count) / elapsed, **labels)
