"""Structured tracing spans.

:func:`span` is a context manager emitting a ``span_start``/``span_end``
event pair with monotonic timings, a recorder-local span id and the id
of the enclosing span - enough to rebuild the call tree from the flat
JSONL stream.  The pair is emitted and the open-span pointer restored in
a ``finally`` block, so the stream stays well-formed (strict stack
discipline) whatever the body raises; :func:`validate_span_events`
checks exactly that property and backs the hypothesis suite.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.errors import ParameterError
from repro.obs.recorder import (
    _reset_current_span,
    _set_current_span,
    current_span_id,
    get_recorder,
)

__all__ = ["jsonable", "span", "validate_span_events"]


def jsonable(value: Any) -> Any:
    """Best-effort coercion of an attribute value to JSON types.

    Handles the scalars the instrumented layers actually pass (Python
    and numpy numbers, strings, bools, None) plus nested dicts/sequences;
    non-finite floats become None (matching the store's JSON policy) and
    anything unrecognised falls back to ``str(value)`` - attributes must
    never be able to break a run just because a type slipped through.
    """
    if value is None or isinstance(value, (str, bool)):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", None) in ((), None):
        try:
            return jsonable(item())
        except (TypeError, ValueError):  # pragma: no cover - exotic .item()
            return str(value)
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return jsonable(tolist())
    if isinstance(value, dict):
        return {str(key): jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    return str(value)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[None]:
    """Trace one logical operation as a timed, nestable span.

    With the null recorder installed the body runs with no recording
    work at all (one ``enabled`` check).  Otherwise a ``span_start``
    event is emitted on entry and a matching ``span_end`` - carrying the
    monotonic duration and an ``ok``/``error`` status - on exit, with
    the exception (if any) re-raised unchanged.
    """
    recorder = get_recorder()
    if not recorder.enabled:
        yield
        return
    span_id = recorder.next_span_id()
    parent_id = current_span_id()
    token = _set_current_span(span_id)
    started = time.monotonic()
    recorder.record(
        {
            "type": "span_start",
            "span_id": span_id,
            "parent_id": parent_id,
            "name": name,
            "attrs": {key: jsonable(val) for key, val in attrs.items()},
            "t_mono": started,
        }
    )
    status = "ok"
    error: Optional[str] = None
    try:
        yield
    except BaseException as exc:
        status = "error"
        error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        ended = time.monotonic()
        _reset_current_span(token)
        recorder.record(
            {
                "type": "span_end",
                "span_id": span_id,
                "parent_id": parent_id,
                "name": name,
                "t_mono": ended,
                "duration_s": ended - started,
                "status": status,
                "error": error,
            }
        )


def validate_span_events(events: Sequence[Dict[str, Any]]) -> None:
    """Check that a stream's span events obey strict stack discipline.

    Raises :class:`~repro.errors.ParameterError` on the first violation:
    a ``span_end`` that does not close the innermost open span, a
    mismatched name/parent, a duplicate id, or spans left open at the
    end of the stream.  Non-span events are ignored.
    """
    stack: List[Dict[str, Any]] = []
    seen: set = set()
    for index, event in enumerate(events):
        kind = event.get("type")
        if kind == "span_start":
            span_id = event.get("span_id")
            if span_id in seen:
                raise ParameterError(
                    f"event {index}: duplicate span id {span_id!r}"
                )
            seen.add(span_id)
            expected_parent = stack[-1]["span_id"] if stack else None
            if event.get("parent_id") != expected_parent:
                raise ParameterError(
                    f"event {index}: span {span_id!r} claims parent "
                    f"{event.get('parent_id')!r}, expected "
                    f"{expected_parent!r}"
                )
            stack.append(event)
        elif kind == "span_end":
            if not stack:
                raise ParameterError(
                    f"event {index}: span_end with no span open"
                )
            top = stack.pop()
            for key in ("span_id", "name"):
                if event.get(key) != top.get(key):
                    raise ParameterError(
                        f"event {index}: span_end {key} "
                        f"{event.get(key)!r} does not match open span "
                        f"{top.get(key)!r}"
                    )
    if stack:
        open_ids = [frame["span_id"] for frame in stack]
        raise ParameterError(
            f"stream ended with {len(stack)} span(s) still open: "
            f"{open_ids!r}"
        )
