"""Run profiles: deterministic aggregation of an event stream.

A *run profile* is the JSON artifact written next to each store manifest
(``profile.json``): counters summed, histograms bucketed, gauges
summarised and spans rolled up by name.  Aggregation is a pure fold over
the event list, so counter merging is associative and commutative - the
property that lets worker batches from any number of processes collapse
to the same profile (``tests/property/test_obs_properties.py``).

The profile's ``digest`` covers only the *deterministic* sections -
counters, histograms and span counts/error counts.  Wall-clock data
(span durations, gauges such as slots-per-second or tasks-in-flight) and
the free-form ``meta`` block are excluded, which is why a seeded run
digests identically under ``--jobs 1`` and ``--jobs 4`` even though the
timings in the artifact differ.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ParameterError

__all__ = [
    "PROFILE_SCHEMA",
    "ProfileDiff",
    "build_profile",
    "diff_profiles",
    "profile_digest",
    "summarize_profile",
]

#: Bump when the profile layout changes incompatibly.
PROFILE_SCHEMA = 1

Event = Dict[str, Any]
Profile = Dict[str, Any]

#: Histogram buckets above 2^62 collapse into the overflow bucket.
_MAX_EXPONENT = 62


def metric_key(name: str, labels: Mapping[str, Any]) -> str:
    """Canonical ``name|k=v,...`` identity of one labelled metric."""
    if not labels:
        return name
    rendered = ",".join(
        f"{key}={labels[key]}" for key in sorted(labels)
    )
    return f"{name}|{rendered}"


def _bucket_label(value: float) -> str:
    """Deterministic power-of-two bucket for one observation."""
    if value <= 0:
        return "le_0"
    exponent = max(0, math.ceil(math.log2(value)))
    if exponent > _MAX_EXPONENT:
        return "inf"
    return f"le_{1 << exponent}"


def build_profile(
    events: Iterable[Event],
    *,
    meta: Optional[Mapping[str, Any]] = None,
) -> Profile:
    """Fold an event stream into a run-profile dict (see module doc).

    Unknown event types are counted under ``meta.dropped_events`` rather
    than raising - a newer writer must never crash an older reader.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, Dict[str, Any]] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    spans: Dict[str, Dict[str, Any]] = {}
    dropped = 0
    for event in events:
        kind = event.get("type")
        if kind == "counter":
            key = metric_key(event["name"], event.get("labels", {}))
            counters[key] = counters.get(key, 0) + event["value"]
        elif kind == "gauge":
            key = metric_key(event["name"], event.get("labels", {}))
            value = event["value"]
            stats = gauges.get(key)
            if stats is None:
                gauges[key] = {
                    "count": 1,
                    "last": value,
                    "min": value,
                    "max": value,
                }
            else:
                stats["count"] += 1
                stats["last"] = value
                stats["min"] = min(stats["min"], value)
                stats["max"] = max(stats["max"], value)
        elif kind == "histogram":
            key = metric_key(event["name"], event.get("labels", {}))
            value = event["value"]
            stats = histograms.get(key)
            if stats is None:
                stats = histograms[key] = {
                    "count": 0,
                    "sum": 0,
                    "min": value,
                    "max": value,
                    "buckets": {},
                }
            stats["count"] += 1
            stats["sum"] += value
            stats["min"] = min(stats["min"], value)
            stats["max"] = max(stats["max"], value)
            label = _bucket_label(float(value))
            stats["buckets"][label] = stats["buckets"].get(label, 0) + 1
        elif kind == "span_end":
            name = event.get("name", "<unnamed>")
            stats = spans.get(name)
            if stats is None:
                stats = spans[name] = {
                    "count": 0,
                    "errors": 0,
                    "total_s": 0.0,
                    "max_s": 0.0,
                }
            stats["count"] += 1
            if event.get("status") == "error":
                stats["errors"] += 1
            duration = float(event.get("duration_s", 0.0))
            stats["total_s"] += duration
            stats["max_s"] = max(stats["max_s"], duration)
        elif kind == "span_start":
            pass  # counted via the matching span_end
        else:
            dropped += 1
    profile: Profile = {
        "schema": PROFILE_SCHEMA,
        "meta": dict(meta) if meta else {},
        "counters": {key: counters[key] for key in sorted(counters)},
        "gauges": {key: gauges[key] for key in sorted(gauges)},
        "histograms": {
            key: {
                **histograms[key],
                "buckets": {
                    label: histograms[key]["buckets"][label]
                    for label in sorted(histograms[key]["buckets"])
                },
            }
            for key in sorted(histograms)
        },
        "spans": {name: spans[name] for name in sorted(spans)},
    }
    if dropped:
        profile["meta"]["dropped_events"] = dropped
    profile["digest"] = profile_digest(profile)
    return profile


def profile_digest(profile: Mapping[str, Any]) -> str:
    """SHA-256 over the deterministic sections of a profile.

    Covers counters, histograms and per-span ``count``/``errors``;
    excludes gauges, span timings and ``meta`` (all wall-clock or
    environment dependent), so two runs of the same seeded workload
    digest identically whatever the worker count or machine speed.
    """
    for section in ("counters", "histograms", "spans"):
        if section not in profile:
            raise ParameterError(
                f"profile is missing its {section!r} section"
            )
    stable = {
        "schema": profile.get("schema", PROFILE_SCHEMA),
        "counters": profile["counters"],
        "histograms": profile["histograms"],
        "spans": {
            name: {
                "count": stats.get("count", 0),
                "errors": stats.get("errors", 0),
            }
            for name, stats in profile["spans"].items()
        },
    }
    canonical = json.dumps(
        stable, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ProfileDiff:
    """Field-level delta between two run profiles.

    ``counter_changes``/``histogram_changes``/``span_changes`` map keys
    to ``(a, b)`` pairs; a side missing the key reports ``"<absent>"``.
    Only digest-relevant fields are compared - two runs that differ just
    in wall-clock numbers are reported identical.
    """

    digest_a: str
    digest_b: str
    counter_changes: Dict[str, Tuple[Any, Any]]
    histogram_changes: Dict[str, Tuple[Any, Any]]
    span_changes: Dict[str, Tuple[Any, Any]]

    @property
    def identical(self) -> bool:
        return (
            not self.counter_changes
            and not self.histogram_changes
            and not self.span_changes
        )

    def render(self) -> str:
        lines = [
            f"profile diff {self.digest_a[:12]} .. {self.digest_b[:12]}"
        ]
        for title, changes in (
            ("counters", self.counter_changes),
            ("histograms", self.histogram_changes),
            ("spans", self.span_changes),
        ):
            if not changes:
                continue
            lines.append(f"  {title} ({len(changes)} changed):")
            for key in sorted(changes):
                before, after = changes[key]
                lines.append(f"    {key}: {before!r} -> {after!r}")
        if self.identical:
            lines.append("  identical (timings excluded)")
        return "\n".join(lines)


def _section_diff(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> Dict[str, Tuple[Any, Any]]:
    changes: Dict[str, Tuple[Any, Any]] = {}
    for key in set(a) | set(b):
        left = a.get(key, "<absent>")
        right = b.get(key, "<absent>")
        if left != right:
            changes[key] = (left, right)
    return changes


def diff_profiles(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> ProfileDiff:
    """Compare the digest-relevant sections of two profiles."""
    spans_a = {
        name: (stats.get("count", 0), stats.get("errors", 0))
        for name, stats in a.get("spans", {}).items()
    }
    spans_b = {
        name: (stats.get("count", 0), stats.get("errors", 0))
        for name, stats in b.get("spans", {}).items()
    }
    return ProfileDiff(
        digest_a=a.get("digest", profile_digest(a)),
        digest_b=b.get("digest", profile_digest(b)),
        counter_changes=_section_diff(
            a.get("counters", {}), b.get("counters", {})
        ),
        histogram_changes=_section_diff(
            a.get("histograms", {}), b.get("histograms", {})
        ),
        span_changes=_section_diff(spans_a, spans_b),
    )


def _format_number(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def summarize_profile(profile: Mapping[str, Any]) -> str:
    """Human-readable summary of one run profile (the CLI's ``summary``)."""
    lines: List[str] = []
    digest = profile.get("digest", "")
    lines.append(f"profile digest: {digest or '-'}")
    meta = profile.get("meta", {})
    for key in sorted(meta):
        lines.append(f"  {key}: {meta[key]!r}")
    spans = profile.get("spans", {})
    if spans:
        lines.append("spans (by total time):")
        ordered = sorted(
            spans.items(),
            key=lambda item: (-float(item[1].get("total_s", 0.0)), item[0]),
        )
        for name, stats in ordered:
            lines.append(
                f"  {name}: count={stats.get('count', 0)} "
                f"errors={stats.get('errors', 0)} "
                f"total={_format_number(stats.get('total_s', 0.0))}s "
                f"max={_format_number(stats.get('max_s', 0.0))}s"
            )
    counters = profile.get("counters", {})
    if counters:
        lines.append("counters:")
        for key in sorted(counters):
            lines.append(f"  {key}: {_format_number(counters[key])}")
    histograms = profile.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for key in sorted(histograms):
            stats = histograms[key]
            count = stats.get("count", 0)
            mean = stats.get("sum", 0) / count if count else 0.0
            lines.append(
                f"  {key}: count={count} min={_format_number(stats.get('min', 0))} "
                f"mean={_format_number(mean)} max={_format_number(stats.get('max', 0))}"
            )
    gauges = profile.get("gauges", {})
    if gauges:
        lines.append("gauges (excluded from digest):")
        for key in sorted(gauges):
            stats = gauges[key]
            lines.append(
                f"  {key}: last={_format_number(stats.get('last', 0))} "
                f"min={_format_number(stats.get('min', 0))} "
                f"max={_format_number(stats.get('max', 0))}"
            )
    return "\n".join(lines)
