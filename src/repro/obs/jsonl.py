"""Lossless JSONL encoding of instrumentation events.

Events are plain dicts restricted to JSON types (the instrumentation
helpers sanitise attributes before recording), so the encoding is the
identity up to JSON serialisation: ``line_to_event(event_to_line(e))``
returns an equal dict for every valid event - the round-trip property
``tests/property/test_obs_properties.py`` pins.  Keys are sorted and
separators compact, so identical events always serialise to identical
bytes (the profile digest relies on the same canonical form).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.errors import ParameterError

__all__ = [
    "event_to_line",
    "events_to_jsonl",
    "jsonl_to_events",
    "line_to_event",
]

Event = Dict[str, Any]


def event_to_line(event: Event) -> str:
    """Serialise one event to its canonical single-line JSON form."""
    try:
        return json.dumps(
            event, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as error:
        raise ParameterError(
            f"event is not JSONL-encodable: {error}"
        ) from error


def line_to_event(line: str) -> Event:
    """Parse one JSONL line back to an event dict."""
    try:
        event = json.loads(line)
    except json.JSONDecodeError as error:
        raise ParameterError(
            f"invalid JSONL event line: {error}"
        ) from error
    if not isinstance(event, dict):
        raise ParameterError(
            f"JSONL event must be an object, got {type(event).__name__}"
        )
    return event


def events_to_jsonl(events: Iterable[Event]) -> str:
    """Serialise an event stream to JSON Lines (one event per line)."""
    return "".join(event_to_line(event) + "\n" for event in events)


def jsonl_to_events(text: str) -> List[Event]:
    """Parse a JSON Lines document back to the event list."""
    return [
        line_to_event(line)
        for line in text.splitlines()
        if line.strip()
    ]
